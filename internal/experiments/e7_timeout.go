package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/value"
)

// E7Report reproduces the timeout lesson (Section 4): with distributed
// deadlocks no local detector can see, DLFM relies on the lock timeout —
// "the problem with the timeout mechanism is that it is difficult to come
// up with a perfect timeout period and some transactions may get rollback
// unnecessarily. In our case, we set the timeout to 60 seconds."
//
// The sweep runs a deadlock-prone workload (multi-row transactions in
// random lock order) on an engine with the deadlock detector DISABLED, so
// the timeout is the only resolution mechanism — exactly the global-
// deadlock regime. Short timeouts abort many healthy waiters (wasted
// work); long timeouts leave real deadlocks stalling for the full period.
type E7Report struct {
	Rows []E7Row
}

// E7Row is one timeout setting's outcome.
type E7Row struct {
	Timeout    time.Duration
	Commits    int64
	Timeouts   int64
	AbortRate  float64 // timeouts per 100 commits
	MaxStall   time.Duration
	Throughput float64 // commits/s
}

// RunE7TimeoutSweep sweeps the lock timeout under contention.
func RunE7TimeoutSweep(opt Options) (*E7Report, error) {
	rep := &E7Report{}
	for _, timeout := range []time.Duration{
		25 * time.Millisecond, 100 * time.Millisecond,
		400 * time.Millisecond, 1600 * time.Millisecond,
	} {
		row, err := runE7Once(opt, timeout)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runE7Once(opt Options, timeout time.Duration) (E7Row, error) {
	cfg := engine.DefaultConfig("e7")
	cfg.DetectDeadlocks = false // only the timeout resolves deadlocks
	cfg.NextKeyLocking = false
	cfg.LockTimeout = timeout
	db, err := engine.Open(cfg)
	if err != nil {
		return E7Row{}, err
	}
	defer db.Close()

	c := db.Connect()
	if _, err := c.Exec(`CREATE TABLE accts (id BIGINT NOT NULL, bal BIGINT)`); err != nil {
		return E7Row{}, err
	}
	if _, err := c.Exec(`CREATE UNIQUE INDEX accts_id ON accts (id)`); err != nil {
		return E7Row{}, err
	}
	const rows = 12 // small row pool = heavy contention
	for i := int64(0); i < rows; i++ {
		if _, err := c.Exec(`INSERT INTO accts VALUES (?, 100)`, value.Int(i)); err != nil {
			return E7Row{}, err
		}
	}
	if err := c.Commit(); err != nil {
		return E7Row{}, err
	}
	db.SetStats("accts", 10_000_000, map[string]int64{"id": 10_000_000})

	const clients = 8
	opsEach := opt.ops()
	var commits, timeouts int64
	var maxStall time.Duration
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			conn := db.Connect()
			for i := 0; i < opsEach; i++ {
				a, b := int64(rng.Intn(rows)), int64(rng.Intn(rows))
				opStart := time.Now()
				_, err := conn.Exec(`UPDATE accts SET bal = 99 WHERE id = ?`, value.Int(a))
				if err == nil {
					// Think time while holding the first lock: this is what
					// makes transactions overlap and deadlock cycles form.
					time.Sleep(time.Millisecond)
					_, err = conn.Exec(`UPDATE accts SET bal = 101 WHERE id = ?`, value.Int(b))
				}
				if err == nil {
					err = conn.Commit()
				}
				stall := time.Since(opStart)
				mu.Lock()
				if stall > maxStall {
					maxStall = stall
				}
				if err == nil {
					commits++
				} else {
					timeouts++
				}
				mu.Unlock()
				if err != nil && conn.InTxn() {
					conn.Rollback()
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	row := E7Row{
		Timeout:  timeout,
		Commits:  commits,
		Timeouts: timeouts,
		MaxStall: maxStall,
	}
	if commits > 0 {
		row.AbortRate = float64(timeouts) * 100 / float64(commits)
	}
	if elapsed > 0 {
		row.Throughput = float64(commits) / elapsed.Seconds()
	}
	return row, nil
}

// String renders the report.
func (r *E7Report) String() string {
	t := &table{header: []string{"lock timeout", "commits", "timeout aborts", "aborts/100-commits", "max stall", "commits/s"}}
	for _, row := range r.Rows {
		t.add(row.Timeout.String(), fmtI(row.Commits), fmtI(row.Timeouts),
			fmtF(row.AbortRate), fmtD(row.MaxStall), fmtF(row.Throughput))
	}
	return "E7 — lock-timeout sweep with the deadlock detector disabled (paper: 60 s 'performed reasonably well')\n" + t.String() +
		fmt.Sprintf("shape: short timeouts abort healthy waiters (high aborts/100-commits); long timeouts stall real deadlocks (max stall ≈ timeout)\n")
}
