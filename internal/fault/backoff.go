package fault

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with jitter — the shared
// policy behind the RPC client's reconnect loop and DLFM's phase-2 retry
// loop. A zero Base disables sleeping entirely (tests that want tight retry
// loops keep their speed); a zero Cap defaults to 64×Base.
type Backoff struct {
	Base time.Duration
	Cap  time.Duration
}

// Delay returns the sleep before retry attempt (0-based). The uncapped
// schedule is Base<<attempt; the result is jittered uniformly over the
// upper half of the capped value so concurrent retriers spread out.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 64 * b.Base
	}
	d := b.Base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
