// Package fault is a registry of named, deterministic fault-injection
// points. Production code declares a point once (`var fp = fault.P("name")`)
// and fires it at the instrumented site; when the point is not armed the
// fire is a single atomic load. Tests and the chaos runner arm points with
// actions — error return, connection drop, panic-as-crash, latency — and
// selectors (probability from a seeded PRNG, skip counts, fire limits,
// detail matching) so every chaos run is replayable from its seed.
//
// The failure windows the points model are the ones Gray & Lamport's
// Consensus on Transaction Commit enumerates for two-phase commit:
// participant crash after hardening its vote, coordinator crash between
// phases, and messages lost on the wire.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by an armed point whose Action
// specifies no other behaviour.
var ErrInjected = errors.New("fault: injected error")

// ErrDrop is returned by a point armed with Drop. Transport layers treat it
// as an instruction to sever the connection mid-call.
var ErrDrop = errors.New("fault: connection drop")

// CrashPanic is the panic value of a point armed with Crash. The RPC server
// loop recovers it and severs the connection, modelling the death of the
// serving process; any other panic value propagates.
type CrashPanic struct{ Point string }

func (c CrashPanic) String() string { return "fault: injected crash at " + c.Point }

// AsCrash reports whether a recovered panic value is an injected crash.
func AsCrash(v any) (CrashPanic, bool) {
	c, ok := v.(CrashPanic)
	return c, ok
}

// Action is what an armed point does when it fires. Delay composes with the
// other behaviours (sleep first, then fail); a zero Action fires ErrInjected.
type Action struct {
	Err   error         // error to return (wrapped with the point name)
	Drop  bool          // return ErrDrop: sever the connection
	Crash bool          // panic with CrashPanic: the serving process dies
	Delay time.Duration // sleep before returning
}

// arming is one Arm call's state, swapped atomically into the point.
type arming struct {
	act   Action
	prob  float64 // fire probability; 0 or >=1 means always
	after int64   // skip the first N matching hits
	times int64   // fire at most N times; 0 means unlimited
	match string  // only hits whose detail contains this substring

	mu    sync.Mutex
	seen  int64
	fired int64
}

// Option refines when an armed point fires.
type Option func(*arming)

// Prob fires with probability p, drawn from the registry's seeded PRNG.
func Prob(p float64) Option { return func(a *arming) { a.prob = p } }

// After skips the first n matching hits before firing.
func After(n int) Option { return func(a *arming) { a.after = int64(n) } }

// Times fires at most n times, then the point goes quiet (but stays armed).
func Times(n int) Option { return func(a *arming) { a.times = int64(n) } }

// Match restricts firing to hits whose detail contains substr — e.g. arm
// "rpc.recv.before" for Commit requests only.
func Match(substr string) Option { return func(a *arming) { a.match = substr } }

// Point is one named fault site. Obtain it with P (or Registry.Point) and
// keep the handle; Fire on a disarmed point costs one atomic load.
type Point struct {
	name  string
	reg   *Registry
	armed atomic.Pointer[arming]
	fired atomic.Int64
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fired returns how many times the point has fired since the last Reset.
func (p *Point) Fired() int64 { return p.fired.Load() }

// Fire executes the armed action, if any. It returns nil when the point is
// disarmed or the arming's selectors reject this hit.
func (p *Point) Fire() error { return p.FireDetail("") }

// FireDetail is Fire with a detail string the arming can Match against
// (typically the RPC request name or the work item).
func (p *Point) FireDetail(detail string) error {
	a := p.armed.Load()
	if a == nil {
		return nil
	}
	return p.fire(a, detail)
}

func (p *Point) fire(a *arming, detail string) error {
	a.mu.Lock()
	if a.match != "" && !strings.Contains(detail, a.match) {
		a.mu.Unlock()
		return nil
	}
	a.seen++
	if a.seen <= a.after {
		a.mu.Unlock()
		return nil
	}
	if a.times > 0 && a.fired >= a.times {
		a.mu.Unlock()
		return nil
	}
	if a.prob > 0 && a.prob < 1 && p.reg.rand() >= a.prob {
		a.mu.Unlock()
		return nil
	}
	a.fired++
	act := a.act
	a.mu.Unlock()

	p.fired.Add(1)
	p.reg.injected.Add(1)
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	switch {
	case act.Crash:
		panic(CrashPanic{Point: p.name})
	case act.Drop:
		return fmt.Errorf("fault %s: %w", p.name, ErrDrop)
	case act.Err != nil:
		return fmt.Errorf("fault %s: %w", p.name, act.Err)
	case act.Delay > 0:
		return nil // pure latency
	default:
		return fmt.Errorf("fault %s: %w", p.name, ErrInjected)
	}
}

// Registry holds the process's fault points and the seeded PRNG behind
// probabilistic arming. Arming is expected from test/chaos setup code;
// firing is safe from any goroutine.
type Registry struct {
	mu       sync.Mutex
	rng      *rand.Rand
	points   map[string]*Point
	injected atomic.Int64
}

// New creates an empty registry seeded with 1.
func New() *Registry {
	return &Registry{rng: rand.New(rand.NewSource(1)), points: make(map[string]*Point)}
}

var defaultRegistry = New()

// Default returns the process-wide registry every instrumented package
// fires into.
func Default() *Registry { return defaultRegistry }

// P returns (creating if needed) the named point of the default registry.
// Instrumented sites call it once at package init and keep the handle.
func P(name string) *Point { return defaultRegistry.Point(name) }

// Point returns (creating if needed) the named point.
func (r *Registry) Point(name string) *Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.points[name]
	if p == nil {
		p = &Point{name: name, reg: r}
		r.points[name] = p
	}
	return p
}

// Seed re-seeds the PRNG behind Prob so a chaos run replays exactly.
func (r *Registry) Seed(seed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng = rand.New(rand.NewSource(seed))
}

func (r *Registry) rand() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Arm installs an action at the named point, replacing any previous arming
// (its hit/fire selectors restart from zero).
func (r *Registry) Arm(name string, act Action, opts ...Option) *Point {
	p := r.Point(name)
	a := &arming{act: act}
	for _, opt := range opts {
		opt(a)
	}
	p.armed.Store(a)
	return p
}

// Disarm removes the named point's action; Fire becomes a no-op again.
func (r *Registry) Disarm(name string) { r.Point(name).armed.Store(nil) }

// Reset disarms every point and zeroes all fire counters (the PRNG seed is
// left alone; use Seed to restart a deterministic sequence).
func (r *Registry) Reset() {
	r.mu.Lock()
	pts := make([]*Point, 0, len(r.points))
	for _, p := range r.points {
		pts = append(pts, p)
	}
	r.mu.Unlock()
	for _, p := range pts {
		p.armed.Store(nil)
		p.fired.Store(0)
	}
	r.injected.Store(0)
}

// Injected returns the total number of faults fired since the last Reset.
func (r *Registry) Injected() int64 { return r.injected.Load() }

// Fired returns how many times the named point has fired.
func (r *Registry) Fired(name string) int64 { return r.Point(name).Fired() }

// Armed lists the names of currently armed points, sorted.
func (r *Registry) Armed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name, p := range r.points {
		if p.armed.Load() != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
