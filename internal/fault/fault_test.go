package fault

import (
	"errors"
	"testing"
	"time"
)

// Tests share the default registry (the same one production code fires
// into), so each resets it on entry and exit and must not run in parallel.
func resetAround(t *testing.T) *Registry {
	t.Helper()
	r := Default()
	r.Reset()
	t.Cleanup(r.Reset)
	return r
}

func TestDisarmedFireIsNoop(t *testing.T) {
	r := resetAround(t)
	p := r.Point("test.noop")
	for i := 0; i < 100; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("disarmed Fire returned %v", err)
		}
	}
	if p.Fired() != 0 || r.Injected() != 0 {
		t.Fatalf("disarmed point counted fires: %d/%d", p.Fired(), r.Injected())
	}
}

func TestArmErrorWrapsAndCounts(t *testing.T) {
	r := resetAround(t)
	sentinel := errors.New("boom")
	p := r.Arm("test.err", Action{Err: sentinel})
	err := p.Fire()
	if !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
	if p.Fired() != 1 || r.Injected() != 1 || r.Fired("test.err") != 1 {
		t.Fatalf("fire counters wrong: %d/%d/%d", p.Fired(), r.Injected(), r.Fired("test.err"))
	}
	r.Disarm("test.err")
	if err := p.Fire(); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestZeroActionDefaultsToErrInjected(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.zero", Action{})
	if err := p.Fire(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestDropIsTyped(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.drop", Action{Drop: true})
	if err := p.Fire(); !errors.Is(err, ErrDrop) {
		t.Fatalf("want ErrDrop, got %v", err)
	}
}

func TestTimesLimitsFires(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.times", Action{}, Times(2))
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Fire() != nil {
			fired++
		}
	}
	if fired != 2 || p.Fired() != 2 {
		t.Fatalf("Times(2): fired %d times (counter %d)", fired, p.Fired())
	}
}

func TestAfterSkipsEarlyHits(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.after", Action{}, After(3))
	var outcomes []bool
	for i := 0; i < 5; i++ {
		outcomes = append(outcomes, p.Fire() != nil)
	}
	want := []bool{false, false, false, true, true}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("After(3) hit %d: fired=%v, want %v", i, outcomes[i], want[i])
		}
	}
}

func TestMatchFiltersByDetail(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.match", Action{}, Match("Commit"))
	if err := p.FireDetail("LinkFile"); err != nil {
		t.Fatalf("non-matching detail fired: %v", err)
	}
	if err := p.FireDetail("Commit"); err == nil {
		t.Fatal("matching detail did not fire")
	}
	// Non-matching hits must not consume the selectors' hit budget.
	p2 := r.Arm("test.match2", Action{}, Match("Commit"), Times(1))
	p2.FireDetail("Ping")
	if err := p2.FireDetail("Commit"); err == nil {
		t.Fatal("Times budget consumed by non-matching hit")
	}
}

func TestProbIsDeterministicFromSeed(t *testing.T) {
	r := resetAround(t)
	pattern := func() []bool {
		r.Seed(42)
		p := r.Arm("test.prob", Action{}, Prob(0.3))
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.Fire() != nil)
		}
		return out
	}
	a, b := pattern(), pattern()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob(0.3) fired %d/%d times", fired, len(a))
	}
}

func TestCrashPanicsAndIsRecognizable(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.crash", Action{Crash: true})
	defer func() {
		c, ok := AsCrash(recover())
		if !ok {
			t.Fatal("panic value is not a CrashPanic")
		}
		if c.Point != "test.crash" {
			t.Fatalf("crash point = %q", c.Point)
		}
	}()
	p.Fire()
	t.Fatal("armed Crash did not panic")
}

func TestLatencyDelays(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.delay", Action{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Fire(); err != nil {
		t.Fatalf("pure-latency action returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency action returned after %v", d)
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	r := resetAround(t)
	p := r.Arm("test.reset", Action{})
	p.Fire()
	r.Reset()
	if err := p.Fire(); err != nil {
		t.Fatalf("point still armed after Reset: %v", err)
	}
	if p.Fired() != 0 || r.Injected() != 0 {
		t.Fatalf("counters survive Reset: %d/%d", p.Fired(), r.Injected())
	}
}

func TestArmedLists(t *testing.T) {
	r := resetAround(t)
	r.Arm("test.b", Action{})
	r.Arm("test.a", Action{})
	got := r.Armed()
	if len(got) != 2 || got[0] != "test.a" || got[1] != "test.b" {
		t.Fatalf("Armed() = %v", got)
	}
}

func TestBackoffCapsAndJitters(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond}
	if d := (Backoff{}).Delay(5); d != 0 {
		t.Fatalf("zero Base must not sleep, got %v", d)
	}
	for attempt := 0; attempt < 20; attempt++ {
		d := b.Delay(attempt)
		if d <= 0 || d > b.Cap {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, b.Cap)
		}
	}
	// Deep attempts land in the cap's jitter window [cap/2, cap].
	if d := b.Delay(30); d < b.Cap/2 || d > b.Cap {
		t.Fatalf("capped delay %v outside [%v, %v]", d, b.Cap/2, b.Cap)
	}
}
