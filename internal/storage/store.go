package storage

import (
	"repro/internal/obs"
)

// Store ties the page file and buffer pool together as the engine-facing
// facade: heaps and trees are created or re-attached through it, the
// checkpoint publishes a new durable page set, and Crash reverts to the
// last one (the in-process crash simulation used throughout the repo).
type Store struct {
	pf   *PageFile
	pool *Pool

	checkpoints *obs.Counter
}

// Open opens the page store in dir with a pool of poolPages frames.
// flushLog is called before any dirty page is written back (the WAL rule);
// pass the engine's log-sync closure.
func Open(dir string, poolPages int, flushLog func() error) (*Store, error) {
	pf, err := OpenPageFile(dir)
	if err != nil {
		return nil, err
	}
	return &Store{
		pf:          pf,
		pool:        NewPool(pf, poolPages, flushLog),
		checkpoints: new(obs.Counter),
	}, nil
}

// Instrument registers the store's metrics on reg.
func (s *Store) Instrument(reg *obs.Registry) {
	s.pool.Instrument(reg)
	s.checkpoints = reg.Counter("storage_checkpoints_total")
}

// Meta returns the last durable checkpoint anchor (zero value on a fresh
// directory: StartLSN 0, no tables).
func (s *Store) Meta() Meta { return s.pf.Meta() }

// Pool exposes the buffer pool (tests and stats).
func (s *Store) Pool() *Pool { return s.pool }

// NewHeap creates an empty heap file.
func (s *Store) NewHeap() *HeapFile { return NewHeapFile(s.pool) }

// AttachHeap reopens a heap at its chain head.
func (s *Store) AttachHeap(head int64) (*HeapFile, error) {
	if head == 0 {
		return NewHeapFile(s.pool), nil
	}
	return AttachHeapFile(s.pool, head)
}

// NewTree creates an empty B+tree.
func (s *Store) NewTree() (*BTree, error) { return NewBTree(s.pool) }

// AttachTree reopens a tree at its root page.
func (s *Store) AttachTree(root int64) (*BTree, error) {
	if root == 0 {
		return NewBTree(s.pool)
	}
	return AttachBTree(s.pool, root)
}

// Checkpoint publishes the current state as the new durable set: every
// dirty page is written back (log flushed first), then meta — carrying
// the caller's StartLSN, txn floor, and table anchors — replaces the old
// mapping atomically. The caller must serialize against page mutation.
func (s *Store) Checkpoint(meta Meta) error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.pf.Checkpoint(meta); err != nil {
		return err
	}
	s.checkpoints.Inc()
	return nil
}

// Crash drops all volatile state (pool frames, working mapping), reverting
// to the last durable checkpoint exactly as a process restart would.
func (s *Store) Crash() {
	s.pool.Reset()
	s.pf.Crash()
}

// Close releases the underlying file handle without checkpointing.
func (s *Store) Close() error { return s.pf.Close() }
