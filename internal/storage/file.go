package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// PageFile is a shadow-paged page store: `pages.dat` holds fixed-size
// physical slots, `storage.meta` maps logical page IDs to slots. A dirty
// page is written to its current slot only if that slot is NOT part of the
// last durable checkpoint's mapping; otherwise it goes to a fresh slot and
// the in-memory mapping is redirected. The meta file is replaced atomically
// (tmp + rename + dir fsync) at checkpoint, after the data file is synced —
// so a crash at any instant reverts to the last checkpoint's consistent
// page set, and WAL replay from the checkpoint's StartLSN rebuilds the
// tail. No page in the durable set is ever overwritten in place.
type PageFile struct {
	dir string
	f   *os.File

	meta Meta // last durable checkpoint image (as loaded/written)

	// Working state, diverging from meta between checkpoints.
	mapping map[int64]int64 // logical -> physical slot
	durable map[int64]bool  // physical slots referenced by meta (write-protected)
	free    []int64         // physical slots safe to reuse
	nslots  int64           // physical slots allocated in pages.dat
	nextID  int64           // next logical page ID
}

// Meta is the checkpoint anchor persisted in storage.meta. Everything the
// engine needs to re-attach without replaying history lives here; the WAL
// tail from StartLSN supplies the rest.
type Meta struct {
	// StartLSN is where recovery starts replaying the WAL. Records below
	// it are fully reflected in the checkpointed pages.
	StartLSN int64
	// NextTxn floors the engine's transaction-ID allocator after restart.
	NextTxn int64
	// NextPage floors logical page allocation.
	NextPage int64
	// Mapping is the logical->physical table for the checkpointed set.
	Mapping map[int64]int64
	// Tables carries the engine catalog anchors (DDL + storage roots).
	Tables []TableMeta
}

// TableMeta anchors one table: its DDL (replayed to rebuild schema), heap
// chain head, rid allocator floor, and index roots in catalog order.
type TableMeta struct {
	DDL      string
	HeapHead int64
	NextRID  int64
	Indexes  []IndexMeta
}

// IndexMeta anchors one index: its DDL and B+tree root page.
type IndexMeta struct {
	DDL  string
	Root int64
}

const (
	pagesName = "pages.dat"
	metaName  = "storage.meta"
)

// OpenPageFile opens (or creates) the page store in dir and loads the last
// durable checkpoint's mapping.
func OpenPageFile(dir string) (*PageFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, pagesName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	pf := &PageFile{dir: dir, f: f}
	if err := pf.loadMeta(); err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fileSlots := st.Size() / PageSize
	pf.resetWorking(fileSlots)
	return pf, nil
}

func (pf *PageFile) loadMeta() error {
	pf.meta = Meta{Mapping: map[int64]int64{}, NextPage: 1}
	raw, err := os.ReadFile(filepath.Join(pf.dir, metaName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &pf.meta); err != nil {
		return fmt.Errorf("storage: corrupt meta: %w", err)
	}
	if pf.meta.Mapping == nil {
		pf.meta.Mapping = map[int64]int64{}
	}
	if pf.meta.NextPage < 1 {
		pf.meta.NextPage = 1
	}
	return nil
}

// resetWorking rebuilds the working state from the durable meta: mapping is
// a copy, every mapped slot is protected, and every other allocated slot is
// free for reuse. fileSlots < 0 keeps the current allocation count.
func (pf *PageFile) resetWorking(fileSlots int64) {
	if fileSlots >= 0 {
		pf.nslots = fileSlots
	}
	pf.mapping = make(map[int64]int64, len(pf.meta.Mapping))
	pf.durable = make(map[int64]bool, len(pf.meta.Mapping))
	for l, p := range pf.meta.Mapping {
		pf.mapping[l] = p
		pf.durable[p] = true
		if p >= pf.nslots {
			pf.nslots = p + 1
		}
	}
	pf.free = pf.free[:0]
	for s := int64(0); s < pf.nslots; s++ {
		if !pf.durable[s] {
			pf.free = append(pf.free, s)
		}
	}
	pf.nextID = pf.meta.NextPage
}

// Meta returns the last durable checkpoint anchor.
func (pf *PageFile) Meta() Meta { return pf.meta }

// Allocate mints a fresh logical page ID.
func (pf *PageFile) Allocate() int64 {
	id := pf.nextID
	pf.nextID++
	return id
}

// NextPageID returns the allocator's current floor.
func (pf *PageFile) NextPageID() int64 { return pf.nextID }

// Read fetches a logical page's image from disk.
func (pf *PageFile) Read(id int64) (*Page, error) {
	slot, ok := pf.mapping[id]
	if !ok {
		return nil, fmt.Errorf("storage: read of unmapped page %d", id)
	}
	buf := make([]byte, PageSize)
	if _, err := pf.f.ReadAt(buf, slot*PageSize); err != nil {
		return nil, fmt.Errorf("storage: read page %d (slot %d): %w", id, slot, err)
	}
	return FromBytes(id, buf)
}

// Write persists a logical page. Slots referenced by the durable mapping
// are never overwritten: the page is redirected to a free (or fresh)
// physical slot instead, so a crash before the next checkpoint leaves the
// durable page set intact.
func (pf *PageFile) Write(p *Page) error {
	slot, mapped := pf.mapping[p.ID]
	if !mapped || pf.durable[slot] {
		slot = pf.allocSlot()
		pf.mapping[p.ID] = slot
	}
	if _, err := pf.f.WriteAt(p.Bytes(), slot*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d (slot %d): %w", p.ID, slot, err)
	}
	return nil
}

func (pf *PageFile) allocSlot() int64 {
	if n := len(pf.free); n > 0 {
		s := pf.free[n-1]
		pf.free = pf.free[:n-1]
		return s
	}
	s := pf.nslots
	pf.nslots++
	return s
}

// Checkpoint publishes the current mapping as the new durable set: data
// file synced first, then the meta replaced atomically. After it returns,
// recovery starts from meta.StartLSN; slots released by the old mapping
// become reusable. The fault point fires between the data sync and the
// meta publish — the crash window the recovery tests kill in.
func (pf *PageFile) Checkpoint(meta Meta) error {
	if err := pf.f.Sync(); err != nil {
		return err
	}
	if err := fault.P("storage.checkpoint.meta").Fire(); err != nil {
		return err
	}
	meta.Mapping = make(map[int64]int64, len(pf.mapping))
	for l, p := range pf.mapping {
		meta.Mapping[l] = p
	}
	meta.NextPage = pf.nextID
	raw, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	tmp := filepath.Join(pf.dir, metaName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	tf, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	tf.Close()
	if err := os.Rename(tmp, filepath.Join(pf.dir, metaName)); err != nil {
		return err
	}
	if d, err := os.Open(pf.dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
	pf.meta = meta
	pf.resetWorking(-1)
	return nil
}

// Crash simulates losing all volatile state: the working mapping reverts
// to the last durable checkpoint, exactly as a reopen would see it.
func (pf *PageFile) Crash() {
	pf.resetWorking(-1)
}

// Close releases the data file handle.
func (pf *PageFile) Close() error { return pf.f.Close() }
