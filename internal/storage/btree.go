package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/value"
)

// BTree is a page-backed B+tree over (key, rid) entries, mirroring the
// in-memory internal/btree API surface the engine uses. Entries live only
// in leaves; branches hold separator entries whose child pointer leads to
// entries >= the separator. Leaves are chained left-to-right through the
// page header's next pointer, so range scans walk sibling links without
// re-descending.
//
// Entry encoding: value.AppendRow of the key's values, then the rid as 8
// big-endian bytes. Branch cells append a further 8 bytes naming the child
// page. Ordering is by decoded key (value.CompareKeys) with the rid as a
// tiebreaker — byte order of the encoding is NOT ordering, so every
// comparison decodes; pages hold few dozen entries so the log-factor decode
// cost stays small.
//
// Deletes are lazy: entries leave their leaf but pages never merge. The
// engine's delete traffic is dwarfed by inserts (files link far more often
// than tables drop), and vacuuming under-full leaves is a checkpoint-time
// job the format already permits.
type BTree struct {
	pool *Pool
	root int64
	size int
}

// NewBTree creates an empty tree with a fresh leaf root.
func NewBTree(pool *Pool) (*BTree, error) {
	p, err := pool.NewPage(PageLeaf)
	if err != nil {
		return nil, err
	}
	pool.Unpin(p.ID, true)
	return &BTree{pool: pool, root: p.ID}, nil
}

// AttachBTree reopens a tree at root, counting entries with one leaf walk.
func AttachBTree(pool *Pool, root int64) (*BTree, error) {
	t := &BTree{pool: pool, root: root}
	id, err := t.leftmostLeaf()
	if err != nil {
		return nil, err
	}
	for id != 0 {
		p, err := pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		t.size += p.NSlots()
		next := p.Next()
		pool.Unpin(id, false)
		id = next
	}
	return t, nil
}

// Root returns the current root page ID (persisted in the checkpoint meta).
func (t *BTree) Root() int64 { return t.root }

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// entry encoding ----------------------------------------------------------

func encodeEntry(k value.Key, rid int64) []byte {
	buf := value.AppendRow(nil, value.Row(k))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(rid))
	return append(buf, tmp[:]...)
}

func decodeEntry(cell []byte) (value.Key, int64, error) {
	row, n, err := value.DecodeRow(cell)
	if err != nil {
		return nil, 0, err
	}
	if len(cell) < n+8 {
		return nil, 0, fmt.Errorf("storage: btree entry truncated")
	}
	rid := int64(binary.BigEndian.Uint64(cell[n : n+8]))
	return value.Key(row), rid, nil
}

// branch cells carry the entry plus a trailing child page ID.
func encodeBranch(entry []byte, child int64) []byte {
	out := make([]byte, 0, len(entry)+8)
	out = append(out, entry...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(child))
	return append(out, tmp[:]...)
}

func branchChild(cell []byte) int64 {
	return int64(binary.BigEndian.Uint64(cell[len(cell)-8:]))
}

func branchEntry(cell []byte) []byte { return cell[:len(cell)-8] }

// compareEntry orders cell against (k, rid): key first, rid tiebreak.
func compareEntry(cell []byte, k value.Key, rid int64) (int, error) {
	ek, erid, err := decodeEntry(cell)
	if err != nil {
		return 0, err
	}
	if c := value.CompareKeys(ek, k); c != 0 {
		return c, nil
	}
	switch {
	case erid < rid:
		return -1, nil
	case erid > rid:
		return 1, nil
	}
	return 0, nil
}

// search finds the first slot in p whose entry is >= (k, rid); found
// reports an exact match. Branch cells compare by their embedded entry.
func (t *BTree) search(p *Page, k value.Key, rid int64, branch bool) (int, bool, error) {
	lo, hi := 0, p.NSlots()
	found := false
	for lo < hi {
		mid := (lo + hi) / 2
		cell := p.Cell(mid)
		if branch {
			cell = branchEntry(cell)
		}
		c, err := compareEntry(cell, k, rid)
		if err != nil {
			return 0, false, err
		}
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true, nil
		}
	}
	return lo, found, nil
}

// childFor picks the branch child to descend for (k, rid): the child of
// the last separator <= the target, or the leftmost child (header next)
// when the target precedes every separator.
func (t *BTree) childFor(p *Page, k value.Key, rid int64) (int64, int, error) {
	i, found, err := t.search(p, k, rid, true)
	if err != nil {
		return 0, 0, err
	}
	if found {
		return branchChild(p.Cell(i)), i, nil
	}
	if i == 0 {
		return p.Next(), -1, nil
	}
	return branchChild(p.Cell(i - 1)), i - 1, nil
}

// Insert adds (k, rid); inserting an existing entry is a no-op returning
// false. The lsn stamps every page the insert dirties.
func (t *BTree) Insert(k value.Key, rid int64, lsn int64) (bool, error) {
	split, added, err := t.insertAt(t.root, k, rid, lsn)
	if err != nil {
		return false, err
	}
	if split != nil {
		// Root split: new branch root with old root as leftmost child.
		nr, err := t.pool.NewPage(PageBranch)
		if err != nil {
			return false, err
		}
		nr.SetNext(t.root)
		if !nr.InsertCell(0, encodeBranch(split.sep, split.right)) {
			t.pool.Unpin(nr.ID, true)
			return false, fmt.Errorf("storage: separator too large for fresh root")
		}
		nr.SetLSN(lsn)
		t.root = nr.ID
		t.pool.Unpin(nr.ID, true)
	}
	if added {
		t.size++
	}
	return added, nil
}

// splitResult reports a child split to its parent: sep is the separator
// entry (first entry of the right page), right the new page's ID.
type splitResult struct {
	sep   []byte
	right int64
}

func (t *BTree) insertAt(id int64, k value.Key, rid int64, lsn int64) (*splitResult, bool, error) {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return nil, false, err
	}
	defer func() { t.pool.Unpin(id, true) }()

	if p.Type() == PageLeaf {
		i, found, err := t.search(p, k, rid, false)
		if err != nil {
			return nil, false, err
		}
		if found {
			return nil, false, nil
		}
		cell := encodeEntry(k, rid)
		if len(cell) > MaxCell/4 {
			// A page must fit several entries or splits stop converging.
			return nil, false, fmt.Errorf("storage: index entry of %d bytes exceeds max %d", len(cell), MaxCell/4)
		}
		if p.InsertCell(i, cell) {
			p.SetLSN(lsn)
			return nil, true, nil
		}
		split, err := t.splitLeaf(p, lsn)
		if err != nil {
			return nil, false, err
		}
		// Re-aim at the proper half and retry (guaranteed to fit now).
		target := p
		if c, cerr := compareEntry(split.sep, k, rid); cerr != nil {
			return nil, false, cerr
		} else if c <= 0 {
			rp, err := t.pool.Fetch(split.right)
			if err != nil {
				return nil, false, err
			}
			defer t.pool.Unpin(split.right, true)
			target = rp
		}
		j, _, err := t.search(target, k, rid, false)
		if err != nil {
			return nil, false, err
		}
		if !target.InsertCell(j, cell) {
			return nil, false, fmt.Errorf("storage: insert does not fit after leaf split")
		}
		target.SetLSN(lsn)
		return split, true, nil
	}

	child, sepIdx, err := t.childFor(p, k, rid)
	if err != nil {
		return nil, false, err
	}
	if child == 0 {
		return nil, false, fmt.Errorf("storage: branch %d has no child for key", id)
	}
	childSplit, added, err := t.insertAt(child, k, rid, lsn)
	if err != nil || childSplit == nil {
		return nil, added, err
	}
	// Install the child's separator right after the slot we descended.
	bc := encodeBranch(childSplit.sep, childSplit.right)
	at := sepIdx + 1
	if p.InsertCell(at, bc) {
		p.SetLSN(lsn)
		return nil, added, nil
	}
	split, err := t.splitBranch(p, lsn)
	if err != nil {
		return nil, false, err
	}
	// Decide the half by comparing the promoted separator with the new one.
	target := p
	if c, cerr := compareEntry(split.sep, decodeKeyOf(childSplit.sep), ridOf(childSplit.sep)); cerr != nil {
		return nil, false, cerr
	} else if c <= 0 {
		rp, err := t.pool.Fetch(split.right)
		if err != nil {
			return nil, false, err
		}
		defer t.pool.Unpin(split.right, true)
		target = rp
	}
	kk, krid, err := decodeEntry(childSplit.sep)
	if err != nil {
		return nil, false, err
	}
	j, _, err := t.search(target, kk, krid, true)
	if err != nil {
		return nil, false, err
	}
	if !target.InsertCell(j, bc) {
		return nil, false, fmt.Errorf("storage: separator does not fit after branch split")
	}
	target.SetLSN(lsn)
	return split, added, nil
}

func decodeKeyOf(entry []byte) value.Key {
	k, _, err := decodeEntry(entry)
	if err != nil {
		panic(fmt.Sprintf("storage: corrupt separator: %v", err))
	}
	return k
}

func ridOf(entry []byte) int64 {
	_, rid, err := decodeEntry(entry)
	if err != nil {
		panic(fmt.Sprintf("storage: corrupt separator: %v", err))
	}
	return rid
}

// splitLeaf moves the upper half of p to a new right sibling, fixes the
// chain, and returns the separator (copy of the right page's first entry).
func (t *BTree) splitLeaf(p *Page, lsn int64) (*splitResult, error) {
	r, err := t.pool.NewPage(PageLeaf)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(r.ID, true)
	mid := p.NSlots() / 2
	for i := mid; i < p.NSlots(); {
		if !r.InsertCell(r.NSlots(), p.Cell(i)) {
			return nil, fmt.Errorf("storage: leaf split overflow")
		}
		p.DeleteCell(i)
	}
	r.SetNext(p.Next())
	p.SetNext(r.ID)
	p.SetLSN(lsn)
	r.SetLSN(lsn)
	sep := append([]byte(nil), r.Cell(0)...)
	return &splitResult{sep: sep, right: r.ID}, nil
}

// splitBranch promotes p's middle separator: entries above it move to a
// new right branch whose leftmost child is the promoted cell's child.
func (t *BTree) splitBranch(p *Page, lsn int64) (*splitResult, error) {
	r, err := t.pool.NewPage(PageBranch)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(r.ID, true)
	mid := p.NSlots() / 2
	midCell := append([]byte(nil), p.Cell(mid)...)
	r.SetNext(branchChild(midCell))
	for i := mid + 1; i < p.NSlots(); {
		if !r.InsertCell(r.NSlots(), p.Cell(i)) {
			return nil, fmt.Errorf("storage: branch split overflow")
		}
		p.DeleteCell(i)
	}
	p.DeleteCell(mid)
	p.SetLSN(lsn)
	r.SetLSN(lsn)
	return &splitResult{sep: branchEntry(midCell), right: r.ID}, nil
}

// leafFor descends to the leaf that would hold (k, rid).
func (t *BTree) leafFor(k value.Key, rid int64) (int64, error) {
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return 0, err
		}
		if p.Type() == PageLeaf {
			t.pool.Unpin(id, false)
			return id, nil
		}
		child, _, err := t.childFor(p, k, rid)
		t.pool.Unpin(id, false)
		if err != nil {
			return 0, err
		}
		if child == 0 {
			return 0, fmt.Errorf("storage: branch %d has no child", id)
		}
		id = child
	}
}

func (t *BTree) leftmostLeaf() (int64, error) {
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return 0, err
		}
		if p.Type() == PageLeaf {
			t.pool.Unpin(id, false)
			return id, nil
		}
		next := p.Next()
		t.pool.Unpin(id, false)
		if next == 0 {
			return 0, fmt.Errorf("storage: branch %d has no leftmost child", id)
		}
		id = next
	}
}

// Delete removes (k, rid), reporting whether it existed. Pages never
// merge (lazy deletion).
func (t *BTree) Delete(k value.Key, rid int64, lsn int64) (bool, error) {
	id, err := t.leafFor(k, rid)
	if err != nil {
		return false, err
	}
	p, err := t.pool.Fetch(id)
	if err != nil {
		return false, err
	}
	i, found, err := t.search(p, k, rid, false)
	if err != nil || !found {
		t.pool.Unpin(id, false)
		return false, err
	}
	p.DeleteCell(i)
	p.SetLSN(lsn)
	t.pool.Unpin(id, true)
	t.size--
	return true, nil
}

// Contains reports whether (k, rid) is present.
func (t *BTree) Contains(k value.Key, rid int64) (bool, error) {
	id, err := t.leafFor(k, rid)
	if err != nil {
		return false, err
	}
	p, err := t.pool.Fetch(id)
	if err != nil {
		return false, err
	}
	defer t.pool.Unpin(id, false)
	_, found, err := t.search(p, k, rid, false)
	return found, err
}

// AscendGreaterOrEqual visits, in order, every entry with key >= pivot
// (regardless of rid) until fn returns false.
func (t *BTree) AscendGreaterOrEqual(pivot value.Key, fn func(k value.Key, rid int64) bool) error {
	// rid -1<<63 sorts the pivot before every real entry sharing its key.
	id, err := t.leafFor(pivot, -1<<63)
	if err != nil {
		return err
	}
	first := true
	for id != 0 {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		start := 0
		if first {
			start, _, err = t.search(p, pivot, -1<<63, false)
			if err != nil {
				t.pool.Unpin(id, false)
				return err
			}
			first = false
		}
		for i := start; i < p.NSlots(); i++ {
			k, rid, err := decodeEntry(p.Cell(i))
			if err != nil {
				t.pool.Unpin(id, false)
				return err
			}
			if !fn(k, rid) {
				t.pool.Unpin(id, false)
				return nil
			}
		}
		next := p.Next()
		t.pool.Unpin(id, false)
		id = next
	}
	return nil
}

// NextKey returns the smallest key strictly greater than k.
func (t *BTree) NextKey(k value.Key) (value.Key, bool, error) {
	var out value.Key
	found := false
	err := t.AscendGreaterOrEqual(k, func(ek value.Key, _ int64) bool {
		if value.CompareKeys(ek, k) > 0 {
			out = ek.Clone()
			found = true
			return false
		}
		return true
	})
	return out, found, err
}
