package storage

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/value"
)

// HeapFile stores one table's rows in a chain of slotted heap pages. Each
// cell is an 8-byte big-endian rid followed by the encoded row. The rid→
// page directory and per-page free-space map live in memory, rebuilt at
// attach by one chain scan that reads only cell headers; the pages are the
// durable truth.
type HeapFile struct {
	pool *Pool
	head int64 // first page of the chain (0 = empty, lazily created)
	dir  map[int64]int64
	// freeish tracks pages with enough slack for a typical row; it is a
	// hint, never a correctness input (Add falls back to a fresh page).
	lastInsert int64
	count      int
}

const ridBytes = 8

// NewHeapFile creates an empty heap (no pages until the first insert).
func NewHeapFile(pool *Pool) *HeapFile {
	return &HeapFile{pool: pool, dir: make(map[int64]int64)}
}

// AttachHeapFile reopens a heap from its chain head, rebuilding the rid
// directory by scanning the chain. Rows are not decoded — only cell rids.
func AttachHeapFile(pool *Pool, head int64) (*HeapFile, error) {
	h := &HeapFile{pool: pool, head: head, dir: make(map[int64]int64)}
	for id := head; id != 0; {
		p, err := pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.NSlots(); i++ {
			h.dir[cellRID(p.Cell(i))] = id
			h.count++
		}
		next := p.Next()
		pool.Unpin(id, false)
		id = next
	}
	return h, nil
}

// Head returns the chain head page ID (0 if the heap never grew a page).
func (h *HeapFile) Head() int64 { return h.head }

// Len returns the number of rows.
func (h *HeapFile) Len() int { return h.count }

func cellRID(cell []byte) int64 {
	return int64(binary.BigEndian.Uint64(cell[:ridBytes]))
}

func heapCell(rid int64, row value.Row) []byte {
	cell := make([]byte, ridBytes, ridBytes+64)
	binary.BigEndian.PutUint64(cell, uint64(rid))
	return value.AppendRow(cell, row)
}

// findCell locates rid's slot in page p; -1 if absent.
func findCell(p *Page, rid int64) int {
	for i := 0; i < p.NSlots(); i++ {
		if cellRID(p.Cell(i)) == rid {
			return i
		}
	}
	return -1
}

// Get fetches a row copy by rid.
func (h *HeapFile) Get(rid int64) (value.Row, bool, error) {
	pid, ok := h.dir[rid]
	if !ok {
		return nil, false, nil
	}
	p, err := h.pool.Fetch(pid)
	if err != nil {
		return nil, false, err
	}
	defer h.pool.Unpin(pid, false)
	i := findCell(p, rid)
	if i < 0 {
		return nil, false, fmt.Errorf("storage: heap directory points rid %d at page %d but the cell is gone", rid, pid)
	}
	row, _, err := value.DecodeRow(p.Cell(i)[ridBytes:])
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// Put inserts or replaces the row at rid, stamping lsn on every page it
// touches.
func (h *HeapFile) Put(rid int64, row value.Row, lsn int64) error {
	cell := heapCell(rid, row)
	if len(cell) > MaxCell {
		return fmt.Errorf("storage: row for rid %d is %d bytes, page max %d", rid, len(cell), MaxCell)
	}
	if pid, ok := h.dir[rid]; ok {
		p, err := h.pool.Fetch(pid)
		if err != nil {
			return err
		}
		i := findCell(p, rid)
		if i < 0 {
			h.pool.Unpin(pid, false)
			return fmt.Errorf("storage: heap directory points rid %d at page %d but the cell is gone", rid, pid)
		}
		if p.ReplaceCell(i, cell) {
			p.SetLSN(lsn)
			h.pool.Unpin(pid, true)
			return nil
		}
		// Grown row no longer fits here: delete and relocate.
		p.DeleteCell(i)
		p.SetLSN(lsn)
		h.pool.Unpin(pid, true)
		delete(h.dir, rid)
		h.count--
	}
	return h.insert(rid, cell, lsn)
}

func (h *HeapFile) insert(rid int64, cell []byte, lsn int64) error {
	// Try the last insert page first — the common append workload touches
	// one warm page — then fall back to walking the chain for space, then
	// to growing a new page at the chain head.
	if h.lastInsert != 0 {
		ok, err := h.tryInsert(h.lastInsert, rid, cell, lsn)
		if err != nil || ok {
			return err
		}
	}
	for id := h.head; id != 0; {
		if id != h.lastInsert {
			ok, err := h.tryInsert(id, rid, cell, lsn)
			if err != nil {
				return err
			}
			if ok {
				h.lastInsert = id
				return nil
			}
		}
		p, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		next := p.Next()
		h.pool.Unpin(id, false)
		id = next
	}
	p, err := h.pool.NewPage(PageHeap)
	if err != nil {
		return err
	}
	p.SetNext(h.head)
	if !p.InsertCell(0, cell) {
		h.pool.Unpin(p.ID, true)
		return fmt.Errorf("storage: fresh heap page rejected %d-byte cell", len(cell))
	}
	p.SetLSN(lsn)
	h.head = p.ID
	h.lastInsert = p.ID
	h.dir[rid] = p.ID
	h.count++
	h.pool.Unpin(p.ID, true)
	return nil
}

func (h *HeapFile) tryInsert(pid, rid int64, cell []byte, lsn int64) (bool, error) {
	p, err := h.pool.Fetch(pid)
	if err != nil {
		return false, err
	}
	if !p.InsertCell(p.NSlots(), cell) {
		h.pool.Unpin(pid, false)
		return false, nil
	}
	p.SetLSN(lsn)
	h.pool.Unpin(pid, true)
	h.dir[rid] = pid
	h.count++
	return true, nil
}

// Delete removes the row at rid; missing rids are a no-op (idempotent
// redo).
func (h *HeapFile) Delete(rid int64, lsn int64) error {
	pid, ok := h.dir[rid]
	if !ok {
		return nil
	}
	p, err := h.pool.Fetch(pid)
	if err != nil {
		return err
	}
	i := findCell(p, rid)
	if i < 0 {
		h.pool.Unpin(pid, false)
		return fmt.Errorf("storage: heap directory points rid %d at page %d but the cell is gone", rid, pid)
	}
	p.DeleteCell(i)
	p.SetLSN(lsn)
	h.pool.Unpin(pid, true)
	delete(h.dir, rid)
	h.count--
	return nil
}

// Scan visits every row in ascending rid order (matching the map-heap
// iteration contract the engine's planner sorts into); fn returning false
// stops the scan.
func (h *HeapFile) Scan(fn func(rid int64, row value.Row) bool) error {
	rids := make([]int64, 0, len(h.dir))
	for rid := range h.dir {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	for _, rid := range rids {
		row, ok, err := h.Get(rid)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(rid, row) {
			return nil
		}
	}
	return nil
}
