package storage

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Pool is the buffer pool: a bounded cache of page frames over a PageFile
// with pin/unpin, dirty tracking, and LRU eviction. Write-back honors the
// WAL rule — flushLog (wired to the engine's log sync) runs before any
// dirty page reaches the PageFile, on eviction and on FlushAll.
//
// The pool has its own mutex so checkpoints and stats can run from other
// goroutines, but pages themselves are unsynchronized: callers mutate a
// pinned page only under the engine latch.
type Pool struct {
	mu       sync.Mutex
	pf       *PageFile
	cap      int
	flushLog func() error

	frames map[int64]*frame
	tick   uint64 // LRU clock

	hits, misses, evictions, reads, writes *obs.Counter
}

type frame struct {
	page  *Page
	pins  int
	dirty bool
	used  uint64 // last-touch tick
}

// MinPoolPages is the smallest usable pool: a B+tree descent pins a root,
// a branch path, a leaf, and a split may hold a sibling and new root too.
const MinPoolPages = 16

// DefaultPoolPages is the pool size when the caller passes 0 (4 MB).
const DefaultPoolPages = 1024

// NewPool builds a pool of at most capPages frames (0 = DefaultPoolPages,
// minimum MinPoolPages). flushLog is invoked before any dirty page is
// written back; nil means no log coupling (tests).
func NewPool(pf *PageFile, capPages int, flushLog func() error) *Pool {
	if capPages == 0 {
		capPages = DefaultPoolPages
	}
	if capPages < MinPoolPages {
		capPages = MinPoolPages
	}
	if flushLog == nil {
		flushLog = func() error { return nil }
	}
	return &Pool{
		pf: pf, cap: capPages, flushLog: flushLog,
		frames: make(map[int64]*frame),
		hits:   new(obs.Counter), misses: new(obs.Counter), evictions: new(obs.Counter),
		reads: new(obs.Counter), writes: new(obs.Counter),
	}
}

// Instrument registers the pool's counters on reg.
func (bp *Pool) Instrument(reg *obs.Registry) {
	bp.hits = reg.Counter("storage_pool_hits_total")
	bp.misses = reg.Counter("storage_pool_misses_total")
	bp.evictions = reg.Counter("storage_pool_evictions_total")
	bp.reads = reg.Counter("storage_page_reads_total")
	bp.writes = reg.Counter("storage_page_writes_total")
	reg.GaugeFunc("storage_pool_pages", func() float64 {
		bp.mu.Lock()
		defer bp.mu.Unlock()
		return float64(len(bp.frames))
	})
}

// NewPage allocates a fresh logical page, pinned and dirty.
func (bp *Pool) NewPage(ptype byte) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id := bp.pf.Allocate()
	if err := bp.makeRoomLocked(); err != nil {
		return nil, err
	}
	p := NewPage(id, ptype)
	bp.tick++
	bp.frames[id] = &frame{page: p, pins: 1, dirty: true, used: bp.tick}
	return p, nil
}

// Fetch pins a page, reading it from the PageFile on a miss.
func (bp *Pool) Fetch(id int64) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.tick++
	if fr, ok := bp.frames[id]; ok {
		bp.hits.Inc()
		fr.pins++
		fr.used = bp.tick
		return fr.page, nil
	}
	bp.misses.Inc()
	if err := bp.makeRoomLocked(); err != nil {
		return nil, err
	}
	p, err := bp.pf.Read(id)
	if err != nil {
		return nil, err
	}
	bp.reads.Inc()
	bp.frames[id] = &frame{page: p, pins: 1, used: bp.tick}
	return p, nil
}

// Unpin releases one pin; dirty marks the page as modified since its last
// write-back (the caller must have stamped the page LSN already).
func (bp *Pool) Unpin(id int64, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// makeRoomLocked evicts the least-recently-used unpinned frame until the
// pool is under capacity. All-pinned pools grow past cap rather than
// deadlock — capacity is a target, correctness bound is pin discipline.
func (bp *Pool) makeRoomLocked() error {
	for len(bp.frames) >= bp.cap {
		var victim *frame
		var victimID int64
		for id, fr := range bp.frames {
			if fr.pins > 0 {
				continue
			}
			if victim == nil || fr.used < victim.used {
				victim, victimID = fr, id
			}
		}
		if victim == nil {
			return nil
		}
		if victim.dirty {
			if err := bp.flushLog(); err != nil {
				return err
			}
			if err := bp.pf.Write(victim.page); err != nil {
				return err
			}
			bp.writes.Inc()
		}
		delete(bp.frames, victimID)
		bp.evictions.Inc()
	}
	return nil
}

// FlushAll writes every dirty frame back to the PageFile (log first),
// keeping the frames cached and clean. This is the checkpoint's page
// phase; the caller serializes it against page mutation (engine latch).
func (bp *Pool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	flushed := false
	for _, fr := range bp.frames {
		if !fr.dirty {
			continue
		}
		if !flushed {
			if err := bp.flushLog(); err != nil {
				return err
			}
			flushed = true
		}
		if err := bp.pf.Write(fr.page); err != nil {
			return err
		}
		bp.writes.Inc()
		fr.dirty = false
	}
	return nil
}

// Reset drops every frame — the crash simulation. Pins are assumed gone
// (the engine only crashes between transactions in tests).
func (bp *Pool) Reset() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = make(map[int64]*frame)
}

// PoolStats is a snapshot of the pool's cumulative counters.
type PoolStats struct {
	Hits, Misses, Evictions int64
	Reads, Writes           int64
	Pages                   int
}

// Stats snapshots the pool counters (same atomics /metrics reads).
func (bp *Pool) Stats() PoolStats {
	bp.mu.Lock()
	pages := len(bp.frames)
	bp.mu.Unlock()
	return PoolStats{
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
		Reads:     bp.reads.Load(),
		Writes:    bp.writes.Load(),
		Pages:     pages,
	}
}
