// Package storage is the page-based durable storage engine under
// internal/engine: slotted heap pages and a page-backed B+tree, fronted by
// a buffer pool with pin/unpin and LRU eviction, over a shadow-paged page
// file. Durability follows the WAL rule — the log is flushed before any
// dirty page reaches disk — and periodic checkpoints publish a consistent
// page set plus a start-LSN so recovery replays only the log tail.
//
// Concurrency contract: the storage layer is serialized by the engine's
// latch (every heap/tree call happens with it held); the buffer pool keeps
// its own mutex only so the checkpoint path and diagnostics can run from
// other goroutines without assuming that discipline.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed on-disk page size. Every heap row and index entry
// must fit in one page (no overflow chains); the engine's rows are file
// metadata and stay far below this.
const PageSize = 4096

// Page types stored in the header.
const (
	PageFree   byte = 0
	PageHeap   byte = 1
	PageLeaf   byte = 2
	PageBranch byte = 3
)

// Page header layout (21 bytes):
//
//	[0:8]   pageLSN — LSN of the log record that last dirtied the page
//	[8]     type
//	[9:17]  next — heap chain / leaf right-sibling / branch leftmost child
//	[17:19] nslots
//	[19:21] cellTop — lowest byte offset occupied by a cell
//
// The slot directory (4 bytes per slot: offset, length) grows down-file
// from the header; cells grow up-file from the page end. Deleting a cell
// removes its slot and leaves a hole; holes are reclaimed by compaction
// when an insert needs the space.
const (
	hdrSize  = 21
	slotSize = 4
)

// MaxCell is the largest cell a page can hold.
const MaxCell = PageSize - hdrSize - slotSize

// Page is one in-memory page image. The ID is the *logical* page number;
// the page file maps it to a physical slot (shadow paging).
type Page struct {
	ID  int64
	buf []byte
}

// NewPage returns a zeroed page of the given type.
func NewPage(id int64, ptype byte) *Page {
	p := &Page{ID: id, buf: make([]byte, PageSize)}
	p.buf[8] = ptype
	p.setCellTop(PageSize)
	return p
}

// FromBytes wraps a page image read from disk.
func FromBytes(id int64, buf []byte) (*Page, error) {
	if len(buf) != PageSize {
		return nil, fmt.Errorf("storage: page %d image is %d bytes, want %d", id, len(buf), PageSize)
	}
	return &Page{ID: id, buf: buf}, nil
}

// Bytes exposes the raw image for writing to disk.
func (p *Page) Bytes() []byte { return p.buf }

// LSN returns the page LSN (the WAL position that last dirtied it).
func (p *Page) LSN() int64 { return int64(binary.BigEndian.Uint64(p.buf[0:8])) }

// SetLSN stamps the page LSN.
func (p *Page) SetLSN(lsn int64) {
	if lsn > p.LSN() {
		binary.BigEndian.PutUint64(p.buf[0:8], uint64(lsn))
	}
}

// Type returns the page type byte.
func (p *Page) Type() byte { return p.buf[8] }

// Next returns the chain pointer: next heap page, leaf right sibling, or
// branch leftmost child. Zero means none (logical page 0 is the meta
// anchor and never a data page).
func (p *Page) Next() int64 { return int64(binary.BigEndian.Uint64(p.buf[9:17])) }

// SetNext updates the chain pointer.
func (p *Page) SetNext(id int64) { binary.BigEndian.PutUint64(p.buf[9:17], uint64(id)) }

// NSlots returns the number of live cells.
func (p *Page) NSlots() int { return int(binary.BigEndian.Uint16(p.buf[17:19])) }

func (p *Page) setNSlots(n int)   { binary.BigEndian.PutUint16(p.buf[17:19], uint16(n)) }
func (p *Page) cellTop() int      { return int(binary.BigEndian.Uint16(p.buf[19:21])) }
func (p *Page) setCellTop(v int)  { binary.BigEndian.PutUint16(p.buf[19:21], uint16(v%65536)) }
func (p *Page) slotOff(i int) int { return hdrSize + i*slotSize }

// cellTopVal returns the real cell top (65536 is stored as 0).
func (p *Page) cellTopVal() int {
	v := p.cellTop()
	if v == 0 {
		return PageSize
	}
	return v
}

func (p *Page) slot(i int) (off, ln int) {
	s := p.slotOff(i)
	return int(binary.BigEndian.Uint16(p.buf[s : s+2])), int(binary.BigEndian.Uint16(p.buf[s+2 : s+4]))
}

func (p *Page) setSlot(i, off, ln int) {
	s := p.slotOff(i)
	binary.BigEndian.PutUint16(p.buf[s:s+2], uint16(off))
	binary.BigEndian.PutUint16(p.buf[s+2:s+4], uint16(ln))
}

// Cell returns the i-th cell's bytes (aliasing the page buffer; callers
// must copy before the page can be modified or evicted).
func (p *Page) Cell(i int) []byte {
	off, ln := p.slot(i)
	return p.buf[off : off+ln]
}

// liveBytes sums the live cell lengths.
func (p *Page) liveBytes() int {
	total := 0
	for i := 0; i < p.NSlots(); i++ {
		_, ln := p.slot(i)
		total += ln
	}
	return total
}

// FreeSpace returns the bytes available for one more cell + slot after
// compaction (the insert budget).
func (p *Page) FreeSpace() int {
	slotEnd := hdrSize + p.NSlots()*slotSize
	free := PageSize - slotEnd - p.liveBytes() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// compact repacks live cells against the page end, squeezing out holes
// left by deleted cells.
func (p *Page) compact() {
	n := p.NSlots()
	tmp := make([]byte, 0, PageSize)
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		c := p.Cell(i)
		lens[i] = len(c)
		tmp = append(tmp, c...)
	}
	// Re-place cells from the end of the page, preserving slot order.
	top := PageSize
	off := 0
	offs := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		top -= lens[i]
		offs[i] = top
	}
	for i := 0; i < n; i++ {
		copy(p.buf[offs[i]:offs[i]+lens[i]], tmp[off:off+lens[i]])
		off += lens[i]
		p.setSlot(i, offs[i], lens[i])
	}
	p.setCellTop(top)
}

// InsertCell inserts cell at slot index i (shifting later slots up) and
// reports whether it fit.
func (p *Page) InsertCell(i int, cell []byte) bool {
	if len(cell) > MaxCell {
		return false
	}
	n := p.NSlots()
	slotEnd := hdrSize + n*slotSize
	contig := p.cellTopVal() - slotEnd
	need := len(cell) + slotSize
	if contig < need {
		if p.FreeSpace() < len(cell) {
			return false
		}
		p.compact()
		contig = p.cellTopVal() - slotEnd
		if contig < need {
			return false
		}
	}
	top := p.cellTopVal() - len(cell)
	copy(p.buf[top:], cell)
	// Shift slots [i, n) one entry right.
	copy(p.buf[p.slotOff(i+1):p.slotOff(n+1)], p.buf[p.slotOff(i):p.slotOff(n)])
	p.setSlot(i, top, len(cell))
	p.setNSlots(n + 1)
	p.setCellTop(top)
	return true
}

// DeleteCell removes slot i; the cell bytes become a hole reclaimed by the
// next compaction.
func (p *Page) DeleteCell(i int) {
	n := p.NSlots()
	copy(p.buf[p.slotOff(i):p.slotOff(n-1)], p.buf[p.slotOff(i+1):p.slotOff(n)])
	p.setNSlots(n - 1)
	if n-1 == 0 {
		p.setCellTop(PageSize)
	}
}

// ReplaceCell swaps the cell at slot i for a new one, reporting whether it
// fit (the slot is removed and re-inserted, so size may change).
func (p *Page) ReplaceCell(i int, cell []byte) bool {
	off, ln := p.slot(i)
	if len(cell) <= ln {
		// Shrinking or same-size replace runs in place.
		copy(p.buf[off:], cell)
		p.setSlot(i, off, len(cell))
		return true
	}
	old := append([]byte(nil), p.Cell(i)...)
	p.DeleteCell(i)
	if p.InsertCell(i, cell) {
		return true
	}
	// Roll back so the caller can relocate the record elsewhere.
	if !p.InsertCell(i, old) {
		panic("storage: ReplaceCell rollback lost a cell")
	}
	return false
}
