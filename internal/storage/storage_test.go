package storage

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

func testRow(i int) value.Row {
	return value.Row{value.Int(int64(i)), value.Str(fmt.Sprintf("row-%06d", i))}
}

func testKey(i int) value.Key {
	return value.Key{value.Str(fmt.Sprintf("k%06d", i))}
}

func TestPageInsertDeleteCompact(t *testing.T) {
	p := NewPage(1, PageHeap)
	var cells [][]byte
	for i := 0; ; i++ {
		c := []byte(fmt.Sprintf("cell-%04d-%s", i, string(make([]byte, i%37))))
		if !p.InsertCell(p.NSlots(), c) {
			break
		}
		cells = append(cells, c)
	}
	if p.NSlots() != len(cells) || len(cells) < 10 {
		t.Fatalf("filled page holds %d cells, inserted %d", p.NSlots(), len(cells))
	}
	// Delete every other cell, then verify the survivors and reclaim the
	// space with further inserts (forcing compaction).
	for i := p.NSlots() - 1; i >= 0; i -= 2 {
		p.DeleteCell(i)
	}
	refill := 0
	for p.InsertCell(p.NSlots(), []byte("refill-cell-payload")) {
		refill++
	}
	if refill == 0 {
		t.Fatal("no space reclaimed after deleting half the cells")
	}
}

func TestPageReplaceCell(t *testing.T) {
	p := NewPage(1, PageHeap)
	p.InsertCell(0, []byte("aaaa"))
	p.InsertCell(1, []byte("bbbb"))
	if !p.ReplaceCell(0, []byte("cc")) {
		t.Fatal("shrink replace failed")
	}
	if got := string(p.Cell(0)); got != "cc" {
		t.Fatalf("Cell(0) = %q", got)
	}
	if !p.ReplaceCell(0, []byte("dddddddddddd")) {
		t.Fatal("grow replace failed")
	}
	if got := string(p.Cell(1)); got != "bbbb" {
		t.Fatalf("Cell(1) = %q after neighbor replace", got)
	}
}

func TestHeapPutGetDeleteAcrossReattach(t *testing.T) {
	st, err := Open(t.TempDir(), MinPoolPages, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h := st.NewHeap()
	const n = 500
	for i := 0; i < n; i++ {
		if err := h.Put(int64(i), testRow(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	// Update some rows (bigger payload forces relocation on some pages).
	for i := 0; i < n; i += 7 {
		big := value.Row{value.Int(int64(i)), value.Str(fmt.Sprintf("updated-%06d-%s", i, string(make([]byte, 100))))}
		if err := h.Put(int64(i), big, 1000); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 13 {
		if err := h.Delete(int64(i), 2000); err != nil {
			t.Fatal(err)
		}
	}
	check := func(h *HeapFile, label string) {
		for i := 0; i < n; i++ {
			row, ok, err := h.Get(int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if i%13 == 0 {
				if ok {
					t.Fatalf("%s: rid %d should be deleted", label, i)
				}
				continue
			}
			if !ok {
				t.Fatalf("%s: rid %d missing", label, i)
			}
			if row[0].Int64() != int64(i) {
				t.Fatalf("%s: rid %d holds row %v", label, i, row)
			}
		}
	}
	check(h, "live")

	// Flush + reattach must rebuild the same directory from the chain.
	if err := st.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	h2, err := st.AttachHeap(h.Head())
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != h.Len() {
		t.Fatalf("reattached Len = %d, want %d", h2.Len(), h.Len())
	}
	check(h2, "reattached")
}

func TestBTreeInsertScanDelete(t *testing.T) {
	st, err := Open(t.TempDir(), MinPoolPages, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr, err := st.NewTree()
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000 // forces multiple levels of splits at 4 KB pages
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i * 2654435761) % n // deterministic shuffle-ish order
	}
	seen := map[int]bool{}
	inserted := 0
	for _, i := range perm {
		if seen[i] {
			continue
		}
		seen[i] = true
		ok, err := tr.Insert(testKey(i), int64(i), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("fresh insert %d reported duplicate", i)
		}
		inserted++
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			if _, err := tr.Insert(testKey(i), int64(i), int64(i)); err != nil {
				t.Fatal(err)
			}
			inserted++
		}
	}
	if tr.Len() != inserted || inserted != n {
		t.Fatalf("Len = %d, inserted %d, want %d", tr.Len(), inserted, n)
	}
	if ok, err := tr.Insert(testKey(42), 42, 99); err != nil || ok {
		t.Fatalf("duplicate insert: ok=%v err=%v", ok, err)
	}

	// Full ordered scan.
	prev := -1
	count := 0
	err = tr.AscendGreaterOrEqual(value.Key{value.Str("")}, func(k value.Key, rid int64) bool {
		if int(rid) <= prev {
			t.Fatalf("scan out of order: rid %d after %d", rid, prev)
		}
		prev = int(rid)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}

	// Pivot scan from the middle.
	first := -1
	err = tr.AscendGreaterOrEqual(testKey(n/2), func(k value.Key, rid int64) bool {
		first = int(rid)
		return false
	})
	if err != nil || first != n/2 {
		t.Fatalf("pivot scan first = %d err=%v, want %d", first, err, n/2)
	}

	// NextKey is strictly greater.
	nk, ok, err := tr.NextKey(testKey(10))
	if err != nil || !ok {
		t.Fatalf("NextKey: ok=%v err=%v", ok, err)
	}
	if value.CompareKeys(nk, testKey(11)) != 0 {
		t.Fatalf("NextKey(10) = %v", nk)
	}

	// Delete a third, verify gone, reattach and recount.
	for i := 0; i < n; i += 3 {
		ok, err := tr.Delete(testKey(i), int64(i), 5000)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got, err := tr.Contains(testKey(3), 3); err != nil || got {
		t.Fatalf("deleted key still present: %v err=%v", got, err)
	}
	if err := st.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	tr2, err := st.AttachTree(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatalf("reattached Len = %d, want %d", tr2.Len(), tr.Len())
	}
}

// TestShadowPagingCrashReverts is the core durability property: writes
// after a checkpoint never overwrite the checkpointed page set, so Crash()
// reverts exactly to it.
func TestShadowPagingCrashReverts(t *testing.T) {
	st, err := Open(t.TempDir(), MinPoolPages, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h := st.NewHeap()
	for i := 0; i < 100; i++ {
		if err := h.Put(int64(i), testRow(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	meta := Meta{StartLSN: 77, NextTxn: 9,
		Tables: []TableMeta{{DDL: "CREATE TABLE t", HeapHead: h.Head(), NextRID: 100}}}
	if err := st.Checkpoint(meta); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint mutations: overwrite, delete, and append enough to
	// force evictions (dirty write-back into fresh slots, never durable
	// ones).
	for i := 0; i < 300; i++ {
		if err := h.Put(int64(100+i), testRow(100+i), 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := h.Delete(int64(i), 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}

	st.Crash()
	got := st.Meta()
	if got.StartLSN != 77 || got.NextTxn != 9 || len(got.Tables) != 1 {
		t.Fatalf("recovered meta = %+v", got)
	}
	h2, err := st.AttachHeap(got.Tables[0].HeapHead)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 100 {
		t.Fatalf("recovered heap has %d rows, want the checkpointed 100", h2.Len())
	}
	for i := 0; i < 100; i++ {
		row, ok, err := h2.Get(int64(i))
		if err != nil || !ok {
			t.Fatalf("recovered rid %d: ok=%v err=%v", i, ok, err)
		}
		if row[1].Text() != fmt.Sprintf("row-%06d", i) {
			t.Fatalf("recovered rid %d holds %v", i, row)
		}
	}
}

// TestPoolEvictionBiggerThanPool drives a working set far past the pool
// capacity and checks nothing is lost (also exercised at engine level by
// the bigger-than-RAM test).
func TestPoolEvictionBiggerThanPool(t *testing.T) {
	flushes := 0
	st, err := Open(t.TempDir(), MinPoolPages, func() error { flushes++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h := st.NewHeap()
	const n = 3000 // ~hundreds of pages at 4 KB, pool holds 16
	for i := 0; i < n; i++ {
		if err := h.Put(int64(i), testRow(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Pool().evictions.Load(); got == 0 {
		t.Fatal("working set exceeded the pool but nothing evicted")
	}
	if flushes == 0 {
		t.Fatal("dirty evictions never flushed the log (WAL rule)")
	}
	for i := 0; i < n; i += 97 {
		row, ok, err := h.Get(int64(i))
		if err != nil || !ok {
			t.Fatalf("rid %d after eviction: ok=%v err=%v", i, ok, err)
		}
		if row[0].Int64() != int64(i) {
			t.Fatalf("rid %d holds %v", i, row)
		}
	}
}

func TestPageFileReopenLoadsMeta(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, MinPoolPages, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := st.NewHeap()
	for i := 0; i < 40; i++ {
		if err := h.Put(int64(i), testRow(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(Meta{StartLSN: 5, Tables: []TableMeta{{DDL: "x", HeapHead: h.Head(), NextRID: 40}}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, MinPoolPages, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m := st2.Meta()
	if m.StartLSN != 5 || len(m.Tables) != 1 {
		t.Fatalf("reopened meta = %+v", m)
	}
	h2, err := st2.AttachHeap(m.Tables[0].HeapHead)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 40 {
		t.Fatalf("reopened heap Len = %d", h2.Len())
	}
}
