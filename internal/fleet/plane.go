package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Plane bundles the fleet observability surface: the collector (metric
// federation, trace stitching, waitgraph merge), the health watchdog, and
// the registry carrying the plane's own fleet_*/health_* metrics.
//
//	/cluster/metrics    federated Prometheus view: aggregate + per-member
//	/cluster/txn/<id>   stitched cross-member span tree for one txn
//	/cluster/waitgraph  fleet-merged wait-for graph with cycles
//	/cluster/health     latest health report (?check=1 forces a fresh one)
type Plane struct {
	Collector *Collector
	Watchdog  *Watchdog
	reg       *obs.Registry
}

// NewPlane assembles a plane over sources with the given health config.
// The plane's own metrics live on a fresh registry tagged plane="fleet",
// served first on /cluster/metrics.
func NewPlane(sources []Source, hc HealthConfig) *Plane {
	c := NewCollector(sources...)
	w := NewWatchdog(c, hc)
	reg := obs.New().Label("plane", "fleet")
	c.Instrument(reg)
	w.Instrument(reg)
	return &Plane{Collector: c, Watchdog: w, reg: reg}
}

// Registry returns the plane's own metrics registry (fleet_*/health_*).
func (p *Plane) Registry() *obs.Registry { return p.reg }

// Handler returns the /cluster/* mux. Mount it on a member's admin server
// (obs.Admin.Mounts) or serve it standalone via Start.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		p.reg.WriteProm(bw) //nolint:errcheck
		view := p.Collector.Federate()
		view.WriteProm(bw) //nolint:errcheck
		bw.Flush()
	})
	mux.HandleFunc("/cluster/txn/", func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/cluster/txn/")
		trace, err := strconv.ParseInt(id, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad txn %q: %v", id, err), http.StatusBadRequest)
			return
		}
		writeJSON(w, p.Collector.Stitch(trace))
	})
	mux.HandleFunc("/cluster/waitgraph", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, p.Collector.MergeWaitGraph())
	})
	mux.HandleFunc("/cluster/health", func(w http.ResponseWriter, req *http.Request) {
		rep := p.Watchdog.Report()
		if req.URL.Query().Get("check") == "1" || rep.At.IsZero() {
			rep = p.Watchdog.Check()
		}
		writeJSON(w, rep)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck
}

// Server is a running standalone fleet endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
	p   *Plane
}

// Start serves the /cluster/* surface on addr and begins the watchdog
// ticker. Close stops both.
func (p *Plane) Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	p.Watchdog.Start()
	srv := &http.Server{Handler: p.Handler()}
	go srv.Serve(ln) //nolint:errcheck
	return &Server{ln: ln, srv: srv, p: p}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the watchdog ticker and the listener.
func (s *Server) Close() error {
	s.p.Watchdog.Stop()
	return s.srv.Close()
}
