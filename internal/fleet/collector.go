package fleet

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Collector owns the member source set and produces federated views. A
// scrape is partial-tolerant by design: a member that errors (restarting,
// partitioned, gone) is reported in the view's Errors map and skipped —
// the fleet view degrades to the reachable members instead of failing.
type Collector struct {
	mu      sync.Mutex
	sources []Source

	scrapes    obs.Counter
	scrapeErrs obs.Counter
}

// NewCollector builds a collector over the given member sources.
func NewCollector(sources ...Source) *Collector {
	return &Collector{sources: sources}
}

// Instrument exposes the collector's counters on reg (fleet_* names).
func (c *Collector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("fleet_scrapes_total", &c.scrapes)
	reg.RegisterCounter("fleet_scrape_errors_total", &c.scrapeErrs)
	reg.GaugeFunc("fleet_members", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.sources))
	})
}

// Add registers a member source (a member joining the fleet live).
func (c *Collector) Add(src Source) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sources = append(c.sources, src)
}

// Remove drops the source named name; reports whether one was removed.
func (c *Collector) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.sources {
		if s.Name() == name {
			c.sources = append(c.sources[:i], c.sources[i+1:]...)
			return true
		}
	}
	return false
}

// Sources returns a snapshot of the current source list.
func (c *Collector) Sources() []Source {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Source(nil), c.sources...)
}

// FederatedView is one fleet-wide metrics scrape: the bucket-exact
// aggregate (counters and gauges summed, histograms merged bucket-wise),
// the per-member snapshots it was computed from, and the members that
// could not be scraped this round.
type FederatedView struct {
	At      time.Time                      `json:"at"`
	Agg     obs.MetricsSnapshot            `json:"agg"`
	Members map[string]obs.MetricsSnapshot `json:"members"`
	Errors  map[string]string              `json:"errors,omitempty"`
}

// Federate scrapes every member concurrently and merges the snapshots.
// Members that fail land in Errors; the aggregate covers the rest, so by
// construction every aggregate counter equals the sum of the per-member
// values in the same view.
func (c *Collector) Federate() FederatedView {
	sources := c.Sources()
	view := FederatedView{
		At:      time.Now(),
		Agg:     obs.NewMetricsSnapshot(),
		Members: make(map[string]obs.MetricsSnapshot, len(sources)),
		Errors:  make(map[string]string),
	}
	type result struct {
		name string
		snap obs.MetricsSnapshot
		err  error
	}
	results := make([]result, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			snap, err := src.Metrics()
			results[i] = result{src.Name(), snap, err}
		}(i, src)
	}
	wg.Wait()
	for _, r := range results {
		c.scrapes.Inc()
		if r.err != nil {
			c.scrapeErrs.Inc()
			view.Errors[r.name] = r.err.Error()
			continue
		}
		view.Members[r.name] = r.snap
		if err := view.Agg.Merge(r.snap); err != nil {
			// Mismatched histogram bounds: those series are skipped but the
			// member's other metrics already merged. Surface it.
			view.Errors[r.name] = err.Error()
		}
	}
	return view
}

// WriteProm renders the federated view in Prometheus text exposition:
// for every metric one aggregate series (no labels) plus one series per
// member labelled member="<name>". Scrape errors surface as
// fleet_member_up{member=...} 0/1 gauges so dashboards see partial views.
func (v FederatedView) WriteProm(w io.Writer) error {
	memberNames := make([]string, 0, len(v.Members))
	for n := range v.Members {
		memberNames = append(memberNames, n)
	}
	sort.Strings(memberNames)

	// Liveness first: one series per member, dead members included.
	upNames := append([]string(nil), memberNames...)
	for n := range v.Errors {
		if _, ok := v.Members[n]; !ok {
			upNames = append(upNames, n)
		}
	}
	sort.Strings(upNames)
	if _, err := fmt.Fprintf(w, "# HELP fleet_member_up Whether the member answered the last scrape.\n# TYPE fleet_member_up gauge\n"); err != nil {
		return err
	}
	for _, n := range upNames {
		up := 1
		if _, dead := v.Errors[n]; dead {
			up = 0
		}
		if _, err := fmt.Fprintf(w, "fleet_member_up{member=%q} %d\n", n, up); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(v.Agg.Counters))
	for n := range v.Agg.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# HELP %s Cumulative count.\n# TYPE %s counter\n%s %d\n", n, n, n, v.Agg.Counters[n]); err != nil {
			return err
		}
		for _, m := range memberNames {
			if val, ok := v.Members[m].Counters[n]; ok {
				if _, err := fmt.Fprintf(w, "%s{member=%q} %d\n", n, m, val); err != nil {
					return err
				}
			}
		}
	}

	names = names[:0]
	for n := range v.Agg.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# HELP %s Current value.\n# TYPE %s gauge\n%s %g\n", n, n, n, v.Agg.Gauges[n]); err != nil {
			return err
		}
		for _, m := range memberNames {
			if val, ok := v.Members[m].Gauges[n]; ok {
				if _, err := fmt.Fprintf(w, "%s{member=%q} %g\n", n, m, val); err != nil {
					return err
				}
			}
		}
	}

	names = names[:0]
	for n := range v.Agg.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# HELP %s Duration histogram in seconds.\n# TYPE %s histogram\n", n, n); err != nil {
			return err
		}
		if err := writeHistProm(w, n, "", v.Agg.Hists[n]); err != nil {
			return err
		}
		for _, m := range memberNames {
			if d, ok := v.Members[m].Hists[n]; ok {
				if err := writeHistProm(w, n, fmt.Sprintf("member=%q", m), d); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeHistProm renders one histogram series (cumulative le buckets in
// seconds, _sum, _count, and the exact-_max companion), with extraLabel
// (already rendered, may be empty) on every line.
func writeHistProm(w io.Writer, name, extraLabel string, d obs.HistogramData) error {
	render := func(suffix string, labels ...string) string {
		all := labels
		if extraLabel != "" {
			all = append([]string{extraLabel}, labels...)
		}
		if len(all) == 0 {
			return name + suffix
		}
		return name + suffix + "{" + strings.Join(all, ",") + "}"
	}
	var cum int64
	for i, b := range d.BoundsNS {
		cum += d.BucketCounts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", render("_bucket", fmt.Sprintf("le=%q", formatSeconds(b))), cum); err != nil {
			return err
		}
	}
	if len(d.BucketCounts) > 0 {
		cum += d.BucketCounts[len(d.BucketCounts)-1]
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", render("_bucket", `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", render("_sum"), time.Duration(d.SumNS).Seconds()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", render("_count"), d.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %g\n", render("_max"), time.Duration(d.MaxNS).Seconds())
	return err
}

// formatSeconds mirrors the obs exposition format for bucket bounds:
// nanoseconds as seconds without trailing-zero noise.
func formatSeconds(ns int64) string {
	s := fmt.Sprintf("%.9f", time.Duration(ns).Seconds())
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		s = "0"
	}
	return s
}
