// Package fleet is the cluster-wide observability plane: it federates the
// per-process obs registries of every DLFM member (and the host) into one
// /cluster/metrics view, stitches span fragments scattered across member
// tracers into single causal trees (/cluster/txn/<id>), merges per-member
// lock wait-for graphs into one fleet graph (/cluster/waitgraph), and runs
// a health watchdog that scores members from their pressure gauges and
// latency drift (/cluster/health), flagging degraded members so the host
// router can deprioritize them.
//
// The paper's deployment unit is a fleet of DLFMs behind one host DB;
// every surface here answers the operator question the per-process admin
// endpoints cannot: "which member is slow, and why".
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Source is one scrapable fleet member: a name plus the three feeds the
// plane federates — metrics, span fragments, and lock wait edges. A member
// in the same process is wrapped by LocalSource; a remote member is
// reached through its admin HTTP endpoint by HTTPSource. Implementations
// must be safe for concurrent use.
type Source interface {
	Name() string
	Metrics() (obs.MetricsSnapshot, error)
	Spans(trace int64) ([]obs.Span, error)
	WaitEdges() ([]obs.WaitEdge, error)
}

// LocalSource scrapes a member living in the same process through direct
// handles — the in-stack (test, bench, single-binary) deployment.
type LocalSource struct {
	name      string
	regs      []*obs.Registry
	tracer    *obs.Tracer
	waitEdges func() []obs.WaitEdge
}

// NewLocalSource wraps in-process handles as a Source. tracer and
// waitEdges may be nil (the member then contributes no spans/edges).
func NewLocalSource(name string, tracer *obs.Tracer, waitEdges func() []obs.WaitEdge, regs ...*obs.Registry) *LocalSource {
	return &LocalSource{name: name, regs: regs, tracer: tracer, waitEdges: waitEdges}
}

func (s *LocalSource) Name() string { return s.name }

func (s *LocalSource) Metrics() (obs.MetricsSnapshot, error) {
	out := obs.NewMetricsSnapshot()
	for _, r := range s.regs {
		if r == nil {
			continue
		}
		snap := r.Export()
		if err := out.Merge(snap); err != nil {
			return out, fmt.Errorf("fleet: %s: %w", s.name, err)
		}
	}
	return out, nil
}

func (s *LocalSource) Spans(trace int64) ([]obs.Span, error) {
	return s.tracer.SpansByTrace(trace), nil
}

func (s *LocalSource) WaitEdges() ([]obs.WaitEdge, error) {
	if s.waitEdges == nil {
		return nil, nil
	}
	return s.waitEdges(), nil
}

// HTTPSource scrapes a member through its admin HTTP endpoint (/metrics,
// /debug/txn/<id>, /debug/waitedges) — the multi-process deployment, where
// each dlfmd runs its own admin server.
type HTTPSource struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPSource scrapes the member named name at baseURL (e.g.
// "http://127.0.0.1:7118"; a bare host:port is accepted). timeout bounds
// each scrape; zero means 5 s.
func NewHTTPSource(name, baseURL string, timeout time.Duration) *HTTPSource {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return &HTTPSource{
		name:   name,
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Timeout: timeout},
	}
}

func (s *HTTPSource) Name() string { return s.name }

func (s *HTTPSource) get(path string) (*http.Response, error) {
	resp, err := s.client.Get(s.base + path)
	if err != nil {
		return nil, fmt.Errorf("fleet: scrape %s%s: %w", s.name, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("fleet: scrape %s%s: HTTP %d", s.name, path, resp.StatusCode)
	}
	return resp, nil
}

func (s *HTTPSource) Metrics() (obs.MetricsSnapshot, error) {
	resp, err := s.get("/metrics")
	if err != nil {
		return obs.NewMetricsSnapshot(), err
	}
	defer resp.Body.Close()
	return obs.ParsePromText(resp.Body)
}

func (s *HTTPSource) Spans(trace int64) ([]obs.Span, error) {
	resp, err := s.get(fmt.Sprintf("/debug/txn/%d", trace))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("fleet: scrape %s spans: %w", s.name, err)
	}
	return body.Spans, nil
}

func (s *HTTPSource) WaitEdges() ([]obs.WaitEdge, error) {
	resp, err := s.get("/debug/waitedges")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Edges []obs.WaitEdge `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("fleet: scrape %s waitedges: %w", s.name, err)
	}
	return body.Edges, nil
}
