package fleet

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// StitchedTrace is one transaction's causal tree assembled from the span
// fragments of every member that took part in it.
type StitchedTrace struct {
	Trace   int64      `json:"trace"`
	Spans   []obs.Span `json:"spans"`
	Members []string   `json:"members"` // members that contributed spans
	// Timeline is the indented tree rendering (RenderTree) of the
	// stitched spans.
	Timeline []string `json:"timeline"`
	// Attribution sums leaf time per bucket (lock_wait, wal_fsync, rpc,
	// ...) across the whole stitched tree.
	Attribution map[string]int64 `json:"attribution,omitempty"`
	// ByMember breaks the bucketed time down per contributing member, the
	// "which member is slow" answer: ByMember["fs2"]["wal_fsync"] is the
	// nanoseconds txn spent in fs2's WAL fsyncs.
	ByMember map[string]map[string]int64 `json:"by_member,omitempty"`
	// Dominant names the single largest member/bucket cell, rendered
	// "member/bucket" (e.g. "fs2/wal_fsync").
	Dominant string `json:"dominant,omitempty"`
	// Errors lists members whose fragments could not be fetched; the
	// stitch covers the rest.
	Errors map[string]string `json:"errors,omitempty"`
}

// spanKey identifies a span's content independent of which member's ring
// returned it: in-stack deployments share one span store, so every member
// returns the same spans and the stitcher must deduplicate them.
type spanKey struct {
	id, parent, start, dur int64
	comp, op               string
}

func keyOf(sp obs.Span) spanKey {
	return spanKey{sp.ID, sp.Parent, sp.StartNS, sp.DurNS, sp.Comp, sp.Op}
}

// Stitch fetches trace's span fragments from every member and assembles
// one tree. Two regimes compose:
//
//   - Shared span store (in-stack): fragments are identical copies —
//     deduplicated by content.
//   - Separate stores (multi-process): span ids are allocated per process
//     and can collide. A colliding id is remapped to a fresh one, with
//     parent references resolved within the owning fragment first (a
//     remapped parent's children follow it); references into other
//     fragments keep their original id, which the PR-5 SpanCtx
//     propagation made globally meaningful for cross-member RPC edges.
func (c *Collector) Stitch(trace int64) StitchedTrace {
	out := StitchedTrace{Trace: trace, Errors: make(map[string]string)}
	sources := c.Sources()

	type frag struct {
		name  string
		spans []obs.Span
	}
	frags := make([]frag, len(sources))
	for i, src := range sources {
		spans, err := src.Spans(trace)
		if err != nil {
			out.Errors[src.Name()] = err.Error()
			continue
		}
		frags[i] = frag{src.Name(), spans}
	}

	seen := make(map[int64]spanKey)
	var maxID int64
	for _, f := range frags {
		for _, sp := range f.spans {
			if sp.ID > maxID {
				maxID = sp.ID
			}
		}
	}
	contributed := map[string]bool{}
	for _, f := range frags {
		if len(f.spans) == 0 {
			continue
		}
		remap := map[int64]int64{}
		added := false
		for _, sp := range f.spans {
			k := keyOf(sp)
			if prev, ok := seen[sp.ID]; ok {
				if prev == k {
					continue // identical copy from a shared store
				}
				maxID++
				remap[sp.ID] = maxID
			} else {
				seen[sp.ID] = k
			}
			added = true
		}
		if !added {
			continue
		}
		for _, sp := range f.spans {
			k := keyOf(sp)
			if prev, ok := seen[sp.ID]; ok && prev == k {
				if _, remapped := remap[sp.ID]; !remapped {
					// First (or identical) copy: emit once, on the first
					// fragment that carries it.
					if !spanEmitted(out.Spans, sp.ID) {
						out.Spans = append(out.Spans, withParent(sp, remap))
					}
					continue
				}
			}
			nsp := sp
			if nid, ok := remap[sp.ID]; ok {
				nsp.ID = nid
			}
			out.Spans = append(out.Spans, withParent(nsp, remap))
		}
		contributed[f.name] = true
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		if out.Spans[i].StartNS != out.Spans[j].StartNS {
			return out.Spans[i].StartNS < out.Spans[j].StartNS
		}
		return out.Spans[i].ID < out.Spans[j].ID
	})

	for m := range contributed {
		out.Members = append(out.Members, m)
	}
	sort.Strings(out.Members)
	out.Timeline = obs.RenderTree(out.Spans)
	out.Attribution, out.ByMember = attribute(out.Spans)
	out.Dominant = dominant(out.ByMember)
	if len(out.Errors) == 0 {
		out.Errors = nil
	}
	return out
}

func spanEmitted(spans []obs.Span, id int64) bool {
	for _, sp := range spans {
		if sp.ID == id {
			return true
		}
	}
	return false
}

func withParent(sp obs.Span, remap map[int64]int64) obs.Span {
	if nid, ok := remap[sp.Parent]; ok {
		sp.Parent = nid
	}
	return sp
}

// attribute buckets leaf time (spans with no children) by obs.BucketOf,
// fleet-wide and per member. The member is recovered from the span's
// component prefix ("fs2/engine" → fs2; unprefixed components — host,
// hostdb, rpc — attribute to "host").
func attribute(spans []obs.Span) (map[string]int64, map[string]map[string]int64) {
	hasChild := make(map[int64]bool, len(spans))
	for _, sp := range spans {
		if sp.Parent != 0 {
			hasChild[sp.Parent] = true
		}
	}
	total := map[string]int64{}
	byMember := map[string]map[string]int64{}
	for _, sp := range spans {
		if hasChild[sp.ID] {
			continue
		}
		bucket := obs.BucketOf(sp)
		total[bucket] += sp.DurNS
		m := memberOf(sp.Comp)
		if byMember[m] == nil {
			byMember[m] = map[string]int64{}
		}
		byMember[m][bucket] += sp.DurNS
	}
	return total, byMember
}

// memberOf extracts the member from a span component: Named tracers
// prefix components with "<member>/".
func memberOf(comp string) string {
	for i := 0; i < len(comp); i++ {
		if comp[i] == '/' {
			return comp[:i]
		}
	}
	return "host"
}

func dominant(byMember map[string]map[string]int64) string {
	var best string
	var bestNS int64
	keys := make([]string, 0, len(byMember))
	for m := range byMember {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	for _, m := range keys {
		buckets := make([]string, 0, len(byMember[m]))
		for b := range byMember[m] {
			buckets = append(buckets, b)
		}
		sort.Strings(buckets)
		for _, b := range buckets {
			if ns := byMember[m][b]; ns > bestNS {
				bestNS = ns
				best = m + "/" + b
			}
		}
	}
	return best
}

// MergedEdge is one wait-for edge in the fleet graph, annotated with the
// member it was observed on and the canonical node keys the merge joined
// it into.
type MergedEdge struct {
	Member      string `json:"member"`
	Waiter      string `json:"waiter"`
	Holder      string `json:"holder"`
	WaiterTxn   int64  `json:"waiter_txn"`
	HolderTxn   int64  `json:"holder_txn"`
	WaiterTrace int64  `json:"waiter_trace,omitempty"`
	HolderTrace int64  `json:"holder_trace,omitempty"`
}

// WaitGraph is the fleet-merged wait-for graph: every member's edges on
// one node space, plus the cycles closed only by the merge (a wait chain
// spanning two DLFMs is invisible to either member's local detector).
type WaitGraph struct {
	Edges  []MergedEdge      `json:"edges"`
	Cycles [][]string        `json:"cycles,omitempty"`
	Errors map[string]string `json:"errors,omitempty"`
}

// nodeKey canonicalizes a transaction across members: the global trace id
// when the member's tracer had a binding (host txn ids are fleet-unique),
// otherwise the member-scoped local id — engine-local txn ids collide
// across members and must not be joined.
func nodeKey(member string, txn, trace int64) string {
	if trace != 0 {
		return fmt.Sprintf("txn:%d", trace)
	}
	return fmt.Sprintf("%s:%d", member, txn)
}

// MergeWaitGraph fetches every member's wait edges and joins them on
// global trace ids. Unreachable members are reported and skipped.
func (c *Collector) MergeWaitGraph() WaitGraph {
	out := WaitGraph{Errors: make(map[string]string)}
	adj := map[string]map[string]bool{}
	for _, src := range c.Sources() {
		edges, err := src.WaitEdges()
		if err != nil {
			out.Errors[src.Name()] = err.Error()
			continue
		}
		for _, e := range edges {
			me := MergedEdge{
				Member:      src.Name(),
				Waiter:      nodeKey(src.Name(), e.WaiterTxn, e.WaiterTrace),
				Holder:      nodeKey(src.Name(), e.HolderTxn, e.HolderTrace),
				WaiterTxn:   e.WaiterTxn,
				HolderTxn:   e.HolderTxn,
				WaiterTrace: e.WaiterTrace,
				HolderTrace: e.HolderTrace,
			}
			out.Edges = append(out.Edges, me)
			if adj[me.Waiter] == nil {
				adj[me.Waiter] = map[string]bool{}
			}
			adj[me.Waiter][me.Holder] = true
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i].Waiter != out.Edges[j].Waiter {
			return out.Edges[i].Waiter < out.Edges[j].Waiter
		}
		return out.Edges[i].Holder < out.Edges[j].Holder
	})
	out.Cycles = findCycles(adj)
	if len(out.Errors) == 0 {
		out.Errors = nil
	}
	return out
}

// findCycles returns the strongly connected components with a cycle (more
// than one node, or a self-loop) — Tarjan, iterative-friendly sizes here
// so plain recursion is fine.
func findCycles(adj map[string]map[string]bool) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var cycles [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || adj[comp[0]][comp[0]] {
				sort.Strings(comp)
				cycles = append(cycles, comp)
			}
		}
	}

	nodes := make([]string, 0, len(adj))
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	// Holders that never wait appear only as edge targets; they cannot be
	// part of a cycle, so seeding from waiters covers everything.
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0] < cycles[j][0] })
	return cycles
}
