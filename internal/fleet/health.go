package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// HealthConfig tunes the watchdog. Zero values take the defaults noted on
// each field.
type HealthConfig struct {
	// Interval between health checks when the watchdog runs its own
	// ticker (Start). Default 1s.
	Interval time.Duration
	// WALQueueMax flags a member whose wal_group_commit_queue gauge sits
	// at or above this depth — the disk cannot drain the commit arrival
	// rate. Default 16.
	WALQueueMax float64
	// LockPressureMax flags a member whose engine_lock_pressure gauge
	// (held locks / lock-list cap) reaches this fraction. Default 0.9.
	LockPressureMax float64
	// ReplLagMax flags a member whose repl_lag_records gauge reaches this
	// many unshipped records. Default 10000.
	ReplLagMax float64
	// DriftHist is the latency histogram watched for drift, per member.
	// Default "wal_sync_seconds" (the log-device health signal).
	DriftHist string
	// DriftFactor flags a member whose windowed DriftHist p99 exceeds
	// this multiple of the fleet median. Default 4.
	DriftFactor float64
	// DriftMin is the absolute p99 floor below which drift is never
	// flagged (a 3x blowup of a 20µs fsync is noise). Default 2ms.
	DriftMin time.Duration
	// MinWindowCount is the minimum number of observations a member's
	// window needs before its drift is judged. Default 8.
	MinWindowCount int64
	// FlagAfter flags a member only after this many consecutive bad
	// checks; ClearAfter clears only after this many consecutive good
	// ones (hysteresis against flapping). Defaults 2 and 3.
	FlagAfter  int
	ClearAfter int
	// SLOTarget, when set, computes an error-budget burn rate from the
	// fleet-aggregated SLOHist: the fraction of windowed observations
	// over the target, divided by SLOBudget. Burn rate 1.0 means latency
	// violations are consuming exactly the allowed budget; >1 means the
	// SLO is burning down.
	SLOTarget time.Duration
	// SLOBudget is the allowed violating fraction. Default 0.01.
	SLOBudget float64
	// SLOHist is the latency series the SLO is defined over. Default
	// "storm_txn_seconds" (the open-loop storm harness's
	// arrival-to-completion latency).
	SLOHist string
	// OnChange, when set, fires on every member flag/clear transition —
	// the hook the host router uses to deprioritize degraded members.
	OnChange func(member string, degraded bool, reason string)
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.WALQueueMax <= 0 {
		c.WALQueueMax = 16
	}
	if c.LockPressureMax <= 0 {
		c.LockPressureMax = 0.9
	}
	if c.ReplLagMax <= 0 {
		c.ReplLagMax = 10000
	}
	if c.DriftHist == "" {
		c.DriftHist = "wal_sync_seconds"
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 4
	}
	if c.DriftMin <= 0 {
		c.DriftMin = 2 * time.Millisecond
	}
	if c.MinWindowCount <= 0 {
		c.MinWindowCount = 8
	}
	if c.FlagAfter <= 0 {
		c.FlagAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 3
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOHist == "" {
		c.SLOHist = "storm_txn_seconds"
	}
	return c
}

// MemberHealth is one member's score in a health report.
type MemberHealth struct {
	Member   string `json:"member"`
	Degraded bool   `json:"degraded"`
	// Reasons lists the signals currently bad for this member (empty for
	// a healthy one); a flagged member keeps its flagging reasons until
	// cleared.
	Reasons      []string `json:"reasons,omitempty"`
	LockPressure float64  `json:"lock_pressure"`
	WALQueue     float64  `json:"wal_queue"`
	ReplLag      float64  `json:"repl_lag"`
	WindowCount  int64    `json:"window_count"`
	WindowP99MS  float64  `json:"window_p99_ms"`
	ScrapeError  string   `json:"scrape_error,omitempty"`
}

// HealthReport is one watchdog evaluation of the whole fleet.
type HealthReport struct {
	At       time.Time      `json:"at"`
	Members  []MemberHealth `json:"members"`
	Degraded []string       `json:"degraded"` // never nil in JSON
	// FleetMedianP99MS is the cross-member median of the windowed drift
	// p99 — the baseline drift is judged against.
	FleetMedianP99MS float64 `json:"fleet_median_p99_ms"`
	// SLOBurnRate is the error-budget burn rate of the windowed SLO
	// series (0 when no SLOTarget is configured or the window is empty).
	SLOBurnRate float64 `json:"slo_burn_rate"`
	// SLOWindowCount/SLOWindowBad are the observations behind the rate.
	SLOWindowCount int64 `json:"slo_window_count"`
	SLOWindowBad   int64 `json:"slo_window_bad"`
}

// memberState is the watchdog's per-member hysteresis memory.
type memberState struct {
	flagged    bool
	badStreak  int
	goodStreak int
	reasons    []string
	prevDrift  obs.HistogramData
}

// Watchdog periodically federates the fleet's metrics and scores each
// member: pressure gauges (lock list, WAL group-commit queue), replication
// lag, and commit-latency drift against the fleet median. Flag/clear
// transitions carry hysteresis and fire OnChange, which is how a degraded
// member reaches the host router.
type Watchdog struct {
	c   *Collector
	cfg HealthConfig

	mu      sync.Mutex
	members map[string]*memberState
	prevSLO obs.HistogramData
	last    HealthReport
	stop    chan struct{}

	checks obs.Counter
	flags  obs.Counter
	clears obs.Counter
}

// NewWatchdog builds a watchdog over the collector's member set.
func NewWatchdog(c *Collector, cfg HealthConfig) *Watchdog {
	return &Watchdog{c: c, cfg: cfg.withDefaults(), members: make(map[string]*memberState)}
}

// Instrument exposes the watchdog's state on reg (health_* names).
func (w *Watchdog) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("health_checks_total", &w.checks)
	reg.RegisterCounter("health_flags_total", &w.flags)
	reg.RegisterCounter("health_clears_total", &w.clears)
	reg.GaugeFunc("health_degraded_members", func() float64 {
		return float64(len(w.Degraded()))
	})
	reg.GaugeFunc("fleet_slo_burn_rate", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.last.SLOBurnRate
	})
}

// Check runs one evaluation pass: scrape, score, update hysteresis, fire
// OnChange for transitions, and return the report. Start calls it on a
// ticker; tests and one-shot probes call it directly.
func (w *Watchdog) Check() HealthReport {
	view := w.c.Federate()
	w.checks.Inc()

	type judged struct {
		health  MemberHealth
		bad     []string
		hasWin  bool
		winP99  time.Duration
		current obs.HistogramData
	}
	names := make([]string, 0, len(view.Members)+len(view.Errors))
	for n := range view.Members {
		names = append(names, n)
	}
	for n := range view.Errors {
		if _, ok := view.Members[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	w.mu.Lock()
	defer w.mu.Unlock()

	rows := make([]judged, 0, len(names))
	var p99s []float64
	for _, n := range names {
		st := w.members[n]
		if st == nil {
			st = &memberState{}
			w.members[n] = st
		}
		j := judged{health: MemberHealth{Member: n}}
		if errStr, dead := view.Errors[n]; dead {
			j.health.ScrapeError = errStr
			j.bad = append(j.bad, "unreachable: "+errStr)
			rows = append(rows, j)
			continue
		}
		snap := view.Members[n]
		j.health.LockPressure = snap.Gauges["engine_lock_pressure"]
		j.health.WALQueue = snap.Gauges["wal_group_commit_queue"]
		j.health.ReplLag = snap.Gauges["repl_lag_records"]
		if j.health.LockPressure >= w.cfg.LockPressureMax {
			j.bad = append(j.bad, fmt.Sprintf("lock pressure %.2f >= %.2f", j.health.LockPressure, w.cfg.LockPressureMax))
		}
		if j.health.WALQueue >= w.cfg.WALQueueMax {
			j.bad = append(j.bad, fmt.Sprintf("wal queue %.0f >= %.0f", j.health.WALQueue, w.cfg.WALQueueMax))
		}
		if j.health.ReplLag >= w.cfg.ReplLagMax {
			j.bad = append(j.bad, fmt.Sprintf("repl lag %.0f >= %.0f", j.health.ReplLag, w.cfg.ReplLagMax))
		}
		j.current = snap.Hists[w.cfg.DriftHist]
		if win, err := j.current.Sub(st.prevDrift); err == nil {
			j.health.WindowCount = win.Count
			if win.Count >= w.cfg.MinWindowCount {
				j.hasWin = true
				j.winP99 = win.Quantile(0.99)
				j.health.WindowP99MS = float64(j.winP99.Nanoseconds()) / 1e6
				p99s = append(p99s, float64(j.winP99))
			}
		}
		rows = append(rows, j)
	}

	report := HealthReport{At: view.At, Degraded: []string{}}

	// Drift baseline: the fleet median of the windowed p99s. Members with
	// idle windows simply don't vote.
	var median float64
	if len(p99s) > 0 {
		sort.Float64s(p99s)
		median = p99s[len(p99s)/2]
		if len(p99s)%2 == 0 {
			median = (p99s[len(p99s)/2-1] + p99s[len(p99s)/2]) / 2
		}
	}
	report.FleetMedianP99MS = median / 1e6

	for i := range rows {
		j := &rows[i]
		st := w.members[j.health.Member]
		if j.hasWin && float64(j.winP99) > median*w.cfg.DriftFactor && j.winP99 >= w.cfg.DriftMin {
			j.bad = append(j.bad, fmt.Sprintf("%s window p99 %.1fms > %.0fx fleet median %.1fms",
				w.cfg.DriftHist, j.health.WindowP99MS, w.cfg.DriftFactor, report.FleetMedianP99MS))
		}
		// Window consumed: next check diffs against this scrape.
		if j.health.ScrapeError == "" {
			st.prevDrift = j.current
		}

		if len(j.bad) > 0 {
			st.badStreak++
			st.goodStreak = 0
			st.reasons = j.bad
		} else {
			st.goodStreak++
			st.badStreak = 0
		}
		if !st.flagged && st.badStreak >= w.cfg.FlagAfter {
			st.flagged = true
			w.flags.Inc()
			if w.cfg.OnChange != nil {
				w.cfg.OnChange(j.health.Member, true, joinReasons(st.reasons))
			}
		} else if st.flagged && st.goodStreak >= w.cfg.ClearAfter {
			st.flagged = false
			st.reasons = nil
			w.clears.Inc()
			if w.cfg.OnChange != nil {
				w.cfg.OnChange(j.health.Member, false, "recovered")
			}
		}
		j.health.Degraded = st.flagged
		if st.flagged {
			j.health.Reasons = st.reasons
			report.Degraded = append(report.Degraded, j.health.Member)
		} else {
			j.health.Reasons = j.bad
		}
		report.Members = append(report.Members, j.health)
	}

	// SLO burn rate over the windowed fleet-aggregate latency series.
	if w.cfg.SLOTarget > 0 {
		cur := view.Agg.Hists[w.cfg.SLOHist]
		if win, err := cur.Sub(w.prevSLO); err == nil && win.Count > 0 {
			bad := countAbove(win, int64(w.cfg.SLOTarget))
			report.SLOWindowCount = win.Count
			report.SLOWindowBad = bad
			report.SLOBurnRate = (float64(bad) / float64(win.Count)) / w.cfg.SLOBudget
		}
		w.prevSLO = cur
	}

	w.last = report
	return report
}

// countAbove counts observations in buckets lying entirely above ns: the
// conservative (under-) count of SLO violations bucket resolution allows.
func countAbove(d obs.HistogramData, ns int64) int64 {
	var n int64
	for i := range d.BoundsNS {
		lower := int64(0)
		if i > 0 {
			lower = d.BoundsNS[i-1]
		}
		if lower >= ns {
			n += d.BucketCounts[i]
		}
	}
	if len(d.BucketCounts) > len(d.BoundsNS) {
		lower := int64(0)
		if len(d.BoundsNS) > 0 {
			lower = d.BoundsNS[len(d.BoundsNS)-1]
		}
		if lower >= ns {
			n += d.BucketCounts[len(d.BucketCounts)-1]
		}
	}
	return n
}

func joinReasons(rs []string) string {
	out := ""
	for i, r := range rs {
		if i > 0 {
			out += "; "
		}
		out += r
	}
	return out
}

// Report returns the most recent check's report (zero before the first).
func (w *Watchdog) Report() HealthReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Degraded returns the sorted currently-flagged member set.
func (w *Watchdog) Degraded() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for n, st := range w.members {
		if st.flagged {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Start runs Check on the configured interval until Stop.
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	w.stop = stop
	w.mu.Unlock()
	go func() {
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop halts the ticker started by Start. Safe to call when not running.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	stop := w.stop
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}
