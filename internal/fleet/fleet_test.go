package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// stubSource is a fully controllable member: fixed snapshot, spans, and
// wait edges, or a scrape error.
type stubSource struct {
	name  string
	snap  obs.MetricsSnapshot
	spans []obs.Span
	edges []obs.WaitEdge
	err   error
}

func (s *stubSource) Name() string { return s.name }
func (s *stubSource) Metrics() (obs.MetricsSnapshot, error) {
	if s.err != nil {
		return obs.MetricsSnapshot{}, s.err
	}
	return s.snap, nil
}
func (s *stubSource) Spans(trace int64) ([]obs.Span, error) {
	if s.err != nil {
		return nil, s.err
	}
	var out []obs.Span
	for _, sp := range s.spans {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out, nil
}
func (s *stubSource) WaitEdges() ([]obs.WaitEdge, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.edges, nil
}

func snapWith(counters map[string]int64) obs.MetricsSnapshot {
	s := obs.NewMetricsSnapshot()
	for n, v := range counters {
		s.Counters[n] = v
	}
	return s
}

// TestFederatePartial: a member that errors mid-scrape degrades the view
// to the reachable members — it must not blank the fleet.
func TestFederatePartial(t *testing.T) {
	healthy := &stubSource{name: "fs1", snap: snapWith(map[string]int64{"engine_commits_total": 10})}
	dead := &stubSource{name: "fs2", err: errors.New("connection refused")}
	c := NewCollector(healthy, dead)
	view := c.Federate()

	if view.Agg.Counters["engine_commits_total"] != 10 {
		t.Fatalf("aggregate lost healthy member: %v", view.Agg.Counters)
	}
	if _, ok := view.Members["fs1"]; !ok {
		t.Fatal("healthy member missing from view")
	}
	if _, ok := view.Members["fs2"]; ok {
		t.Fatal("dead member should not appear in Members")
	}
	if view.Errors["fs2"] == "" {
		t.Fatalf("dead member not reported: %v", view.Errors)
	}

	var buf bytes.Buffer
	if err := view.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range []string{
		`fleet_member_up{member="fs1"} 1`,
		`fleet_member_up{member="fs2"} 0`,
		`engine_commits_total{member="fs1"} 10`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("federated exposition missing %q:\n%s", line, text)
		}
	}
}

// TestFederateSumsMembers: every aggregate counter equals the sum of the
// per-member values in the same view — the federation invariant E16
// asserts end-to-end, pinned here in isolation.
func TestFederateSumsMembers(t *testing.T) {
	a := &stubSource{name: "fs1", snap: snapWith(map[string]int64{"x_total": 3, "y_total": 1})}
	b := &stubSource{name: "fs2", snap: snapWith(map[string]int64{"x_total": 4})}
	view := NewCollector(a, b).Federate()
	for name, agg := range view.Agg.Counters {
		var sum int64
		for _, m := range view.Members {
			sum += m.Counters[name]
		}
		if agg != sum {
			t.Fatalf("counter %s: agg %d != member sum %d", name, agg, sum)
		}
	}
	if view.Agg.Counters["x_total"] != 7 {
		t.Fatalf("x_total = %d, want 7", view.Agg.Counters["x_total"])
	}
}

// TestStitchSharedStore: in-stack deployments share one span store, so
// every member returns identical copies; the stitcher must deduplicate and
// credit only the fragment that actually added the spans.
func TestStitchSharedStore(t *testing.T) {
	tr := obs.NewTracerCfg(obs.TracerConfig{SampleRate: 1})
	root := tr.StartRoot(42, "hostdb", "commit")
	child := tr.StartSpan(root.Ctx(), "engine", "lock_wait")
	child.End()
	root.End()

	host := NewLocalSource("host", tr, nil)
	fs1 := NewLocalSource("fs1", tr, nil) // same store
	st := NewCollector(host, fs1).Stitch(42)

	if len(st.Spans) != 2 {
		t.Fatalf("stitched %d spans, want 2 (dedup failed): %+v", len(st.Spans), st.Spans)
	}
	if len(st.Members) != 1 || st.Members[0] != "host" {
		t.Fatalf("Members = %v, want [host] (only the first fragment adds shared spans)", st.Members)
	}
}

// TestStitchSeparateStores: multi-process members allocate span ids
// independently, so ids collide; the stitcher must remap collisions to
// fresh ids while keeping each fragment's parent edges intact.
func TestStitchSeparateStores(t *testing.T) {
	const trace = 99
	host := obs.NewTracerCfg(obs.TracerConfig{SampleRate: 1})
	hr := host.StartRoot(trace, "hostdb", "commit") // id 1 in host's store
	hc := host.StartSpan(hr.Ctx(), "hostdb", "stmt")
	hc.End()
	hr.End()

	remote := obs.NewTracerCfg(obs.TracerConfig{SampleRate: 1}).Named("fs2")
	rr := remote.StartSpanInTrace(trace, 0, "core", "commit") // id 1 again: collision
	rc := remote.StartSpan(rr.Ctx(), "db", "wal_fsync")       // id 2 again: collision
	rc.End()
	rr.End()

	st := NewCollector(
		NewLocalSource("host", host, nil),
		NewLocalSource("fs2", remote, nil),
	).Stitch(trace)

	if len(st.Spans) != 4 {
		t.Fatalf("stitched %d spans, want 4: %+v", len(st.Spans), st.Spans)
	}
	ids := map[int64]obs.Span{}
	for _, sp := range st.Spans {
		if _, dup := ids[sp.ID]; dup {
			t.Fatalf("duplicate span id %d after remap: %+v", sp.ID, st.Spans)
		}
		ids[sp.ID] = sp
	}
	// The remote fragment's parent edge must survive the remap: its fsync
	// span still hangs off its commit span.
	var remoteRoot, remoteChild obs.Span
	for _, sp := range st.Spans {
		switch sp.Comp {
		case "fs2/core":
			remoteRoot = sp
		case "fs2/db":
			remoteChild = sp
		}
	}
	if remoteRoot.ID == 0 || remoteChild.ID == 0 {
		t.Fatalf("remote spans missing: %+v", st.Spans)
	}
	if remoteChild.Parent != remoteRoot.ID {
		t.Fatalf("remap broke parent edge: child parent %d, root id %d", remoteChild.Parent, remoteRoot.ID)
	}
	if len(st.Members) != 2 {
		t.Fatalf("Members = %v, want both", st.Members)
	}
}

// TestStitchAttribution: leaf time buckets per member and the dominant
// cell names the slow member — the "which member is slow" answer.
func TestStitchAttribution(t *testing.T) {
	const trace = 7
	spans := []obs.Span{
		{Trace: trace, ID: 1, Comp: "hostdb", Op: "commit", DurNS: 100e6, Root: true},
		{Trace: trace, ID: 2, Parent: 1, Comp: "host", Op: "lock_wait", DurNS: 5e6},
		{Trace: trace, ID: 3, Parent: 1, Comp: "fs2/db", Op: "wal_fsync", DurNS: 80e6},
		{Trace: trace, ID: 4, Parent: 1, Comp: "fs1/db", Op: "wal_fsync", DurNS: 2e6},
	}
	st := NewCollector(&stubSource{name: "host", spans: spans}).Stitch(trace)
	if st.Dominant != "fs2/wal_fsync" {
		t.Fatalf("Dominant = %q, want fs2/wal_fsync (ByMember %v)", st.Dominant, st.ByMember)
	}
	if got := st.ByMember["fs2"]["wal_fsync"]; got != 80e6 {
		t.Fatalf("fs2 wal_fsync = %d, want 80ms", got)
	}
	if got := st.ByMember["host"]["lock_wait"]; got != 5e6 {
		t.Fatalf("host lock_wait = %d, want 5ms (unprefixed comps attribute to host)", got)
	}
}

// TestMergeWaitGraphCrossMemberCycle: a wait chain spanning two members is
// invisible to either local detector; joining edges on global trace ids
// must close it.
func TestMergeWaitGraphCrossMemberCycle(t *testing.T) {
	host := &stubSource{name: "host", edges: []obs.WaitEdge{
		// Host txn 101 waits on host txn 102 (host txn id IS the trace id).
		{WaiterTxn: 101, HolderTxn: 102, WaiterTrace: 101, HolderTrace: 102},
	}}
	fs1 := &stubSource{name: "fs1", edges: []obs.WaitEdge{
		// On fs1, local txn 7 (bound to global trace 102) waits on local
		// txn 8 (bound to trace 101) — closing the cycle across members.
		{WaiterTxn: 7, HolderTxn: 8, WaiterTrace: 102, HolderTrace: 101},
		// A purely local edge without trace bindings stays member-scoped.
		{WaiterTxn: 7, HolderTxn: 9},
	}}
	g := NewCollector(host, fs1).MergeWaitGraph()

	if len(g.Edges) != 3 {
		t.Fatalf("merged %d edges, want 3: %+v", len(g.Edges), g.Edges)
	}
	if len(g.Cycles) != 1 {
		t.Fatalf("cycles = %v, want exactly the cross-member one", g.Cycles)
	}
	want := []string{"txn:101", "txn:102"}
	if len(g.Cycles[0]) != 2 || g.Cycles[0][0] != want[0] || g.Cycles[0][1] != want[1] {
		t.Fatalf("cycle = %v, want %v", g.Cycles[0], want)
	}
	// The unbound local edge must NOT have been joined into the trace node
	// space: engine-local txn ids collide across members.
	found := false
	for _, e := range g.Edges {
		if e.Waiter == "fs1:7" && e.Holder == "fs1:9" {
			found = true
		}
	}
	if !found {
		t.Fatalf("member-scoped edge missing: %+v", g.Edges)
	}
}

// driftMember builds one member whose drift histogram we can feed per
// round, exporting a fresh snapshot each scrape like a live registry.
type driftMember struct {
	src  *stubSource
	hist *obs.Histogram
}

func newDriftMember(name string) *driftMember {
	m := &driftMember{src: &stubSource{name: name}, hist: obs.NewHistogram()}
	m.refresh()
	return m
}

func (m *driftMember) observe(n int, v time.Duration) {
	for i := 0; i < n; i++ {
		m.hist.Observe(v)
	}
	m.refresh()
}

func (m *driftMember) refresh() {
	s := obs.NewMetricsSnapshot()
	s.Hists["wal_sync_seconds"] = m.hist.Export()
	m.src.snap = s
}

// TestWatchdogDriftHysteresis: a member whose fsync p99 drifts 20x above
// the fleet median is flagged — after FlagAfter consecutive bad checks,
// not the first — and cleared again after ClearAfter good ones, with
// OnChange firing exactly on the transitions.
func TestWatchdogDriftHysteresis(t *testing.T) {
	m1, m2, victim := newDriftMember("fs1"), newDriftMember("fs2"), newDriftMember("fs3")
	c := NewCollector(m1.src, m2.src, victim.src)

	type change struct {
		member   string
		degraded bool
		reason   string
	}
	var changes []change
	w := NewWatchdog(c, HealthConfig{
		MinWindowCount: 4,
		FlagAfter:      2,
		ClearAfter:     2,
		DriftFactor:    4,
		DriftMin:       2 * time.Millisecond,
		OnChange: func(member string, degraded bool, reason string) {
			changes = append(changes, change{member, degraded, reason})
		},
	})

	badRound := func() {
		m1.observe(8, 500*time.Microsecond)
		m2.observe(8, 500*time.Microsecond)
		victim.observe(8, 10*time.Millisecond)
	}
	goodRound := func() {
		m1.observe(8, 500*time.Microsecond)
		m2.observe(8, 500*time.Microsecond)
		victim.observe(8, 500*time.Microsecond)
	}

	badRound()
	rep := w.Check()
	if len(rep.Degraded) != 0 {
		t.Fatalf("flagged after one bad check, want FlagAfter=2 hysteresis: %v", rep.Degraded)
	}
	badRound()
	rep = w.Check()
	if len(rep.Degraded) != 1 || rep.Degraded[0] != "fs3" {
		t.Fatalf("after 2 bad checks Degraded = %v, want [fs3]", rep.Degraded)
	}
	if len(changes) != 1 || !changes[0].degraded || changes[0].member != "fs3" {
		t.Fatalf("OnChange calls = %+v, want one flag for fs3", changes)
	}
	if !strings.Contains(changes[0].reason, "wal_sync_seconds") {
		t.Fatalf("flag reason %q does not name the drifting series", changes[0].reason)
	}

	goodRound()
	rep = w.Check()
	if len(rep.Degraded) != 1 {
		t.Fatalf("cleared after one good check, want ClearAfter=2: %v", rep.Degraded)
	}
	goodRound()
	rep = w.Check()
	if len(rep.Degraded) != 0 {
		t.Fatalf("still degraded after 2 good checks: %v", rep.Degraded)
	}
	if len(changes) != 2 || changes[1].degraded {
		t.Fatalf("OnChange calls = %+v, want flag then clear", changes)
	}
	// Healthy members never flapped.
	for _, ch := range changes {
		if ch.member != "fs3" {
			t.Fatalf("healthy member %s transitioned: %+v", ch.member, changes)
		}
	}
}

// TestWatchdogUnreachable: a member that stops answering scrapes is a
// degraded member, with the same hysteresis.
func TestWatchdogUnreachable(t *testing.T) {
	ok := &stubSource{name: "fs1", snap: obs.NewMetricsSnapshot()}
	dead := &stubSource{name: "fs2", err: errors.New("dial tcp: connection refused")}
	w := NewWatchdog(NewCollector(ok, dead), HealthConfig{FlagAfter: 2, ClearAfter: 2})
	w.Check()
	rep := w.Check()
	if len(rep.Degraded) != 1 || rep.Degraded[0] != "fs2" {
		t.Fatalf("Degraded = %v, want [fs2]", rep.Degraded)
	}
	var fs2 MemberHealth
	for _, m := range rep.Members {
		if m.Member == "fs2" {
			fs2 = m
		}
	}
	if fs2.ScrapeError == "" || len(fs2.Reasons) == 0 || !strings.Contains(fs2.Reasons[0], "unreachable") {
		t.Fatalf("unreachable member health = %+v", fs2)
	}

	// The member comes back: flag clears after ClearAfter good checks.
	dead.err = nil
	dead.snap = obs.NewMetricsSnapshot()
	w.Check()
	rep = w.Check()
	if len(rep.Degraded) != 0 {
		t.Fatalf("recovered member still degraded: %v", rep.Degraded)
	}
}

// TestWatchdogGaugePressure: the direct gauge thresholds (WAL queue depth
// here) flag without any histogram traffic.
func TestWatchdogGaugePressure(t *testing.T) {
	snap := obs.NewMetricsSnapshot()
	snap.Gauges["wal_group_commit_queue"] = 64
	hot := &stubSource{name: "fs1", snap: snap}
	cool := &stubSource{name: "fs2", snap: obs.NewMetricsSnapshot()}
	w := NewWatchdog(NewCollector(hot, cool), HealthConfig{WALQueueMax: 16, FlagAfter: 1})
	rep := w.Check()
	if len(rep.Degraded) != 1 || rep.Degraded[0] != "fs1" {
		t.Fatalf("Degraded = %v, want [fs1]", rep.Degraded)
	}
}

// TestWatchdogSLOBurn: the burn rate is violating-fraction / budget over
// the fleet-aggregated windowed series.
func TestWatchdogSLOBurn(t *testing.T) {
	h := obs.NewHistogram()
	for i := 0; i < 5; i++ {
		h.Observe(100 * time.Millisecond) // violations (well above target)
	}
	for i := 0; i < 5; i++ {
		h.Observe(10 * time.Microsecond)
	}
	snap := obs.NewMetricsSnapshot()
	snap.Hists["storm_txn_seconds"] = h.Export()
	src := &stubSource{name: "host", snap: snap}
	w := NewWatchdog(NewCollector(src), HealthConfig{
		SLOTarget: time.Millisecond,
		SLOBudget: 0.01,
	})
	rep := w.Check()
	if rep.SLOWindowCount != 10 || rep.SLOWindowBad != 5 {
		t.Fatalf("SLO window = %d/%d, want 5/10", rep.SLOWindowBad, rep.SLOWindowCount)
	}
	if rep.SLOBurnRate < 49 || rep.SLOBurnRate > 51 {
		t.Fatalf("burn rate = %v, want ~50 (0.5 violating / 0.01 budget)", rep.SLOBurnRate)
	}
	// Second check with no new traffic: empty window, no burn.
	rep = w.Check()
	if rep.SLOWindowCount != 0 || rep.SLOBurnRate != 0 {
		t.Fatalf("idle window SLO = %+v, want zero", rep)
	}
}

// TestPlaneRegistryNames: the plane self-instruments under fleet_* and
// health_* — the names DESIGN.md's metrics table promises.
func TestPlaneRegistryNames(t *testing.T) {
	src := &stubSource{name: "fs1", snap: obs.NewMetricsSnapshot()}
	p := NewPlane([]Source{src}, HealthConfig{})
	p.Collector.Federate()
	p.Watchdog.Check()
	var buf bytes.Buffer
	if err := p.Registry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		"fleet_members", "fleet_scrapes_total", "fleet_scrape_errors_total",
		"health_checks_total", "health_flags_total", "health_clears_total",
		"health_degraded_members", "fleet_slo_burn_rate",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("plane registry missing %s:\n%s", name, text)
		}
	}
}

// TestCollectorConcurrency exercises the plane under churn: registry
// writes, Add/Remove of members, federation, stitching, wait-graph merges,
// and watchdog checks all racing. Run with -race this is the memory-safety
// net for the scrape path.
func TestCollectorConcurrency(t *testing.T) {
	reg := obs.New().Label("server", "fs1")
	tr := obs.NewTracerCfg(obs.TracerConfig{SampleRate: 1})
	edges := func() []obs.WaitEdge {
		return []obs.WaitEdge{{WaiterTxn: 1, HolderTxn: 2, WaiterTrace: 1, HolderTrace: 2}}
	}
	c := NewCollector(NewLocalSource("fs1", tr, edges, reg))
	w := NewWatchdog(c, HealthConfig{FlagAfter: 1})

	done := make(chan struct{})
	go func() { // registry writer
		h := reg.Histogram("wal_sync_seconds")
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			reg.Counter("engine_commits_total").Inc()
			h.Observe(time.Duration(i%100) * time.Microsecond)
			sp := tr.StartRoot(int64(i%7+1), "core", "commit")
			tr.StartSpan(sp.Ctx(), "db", "wal_fsync").End()
			sp.End()
		}
	}()
	go func() { // membership churn: a member restarting in a loop
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			c.Add(&stubSource{name: "fs2", snap: obs.NewMetricsSnapshot()})
			c.Remove("fs2")
			c.Add(&stubSource{name: "fs3", err: fmt.Errorf("restarting %d", i)})
			c.Remove("fs3")
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		view := c.Federate()
		if _, ok := view.Members["fs1"]; !ok {
			t.Fatal("stable member vanished from view")
		}
		c.Stitch(int64(1))
		c.MergeWaitGraph()
		w.Check()
	}
	close(done)

	view := c.Federate()
	if view.Agg.Counters["engine_commits_total"] == 0 {
		t.Fatal("no counters federated after churn")
	}
}
