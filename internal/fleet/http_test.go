package fleet

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newAdminServer serves one member's admin surface over real HTTP — the
// scrape target HTTPSource was built for.
func newAdminServer(t *testing.T, reg *obs.Registry, tr *obs.Tracer, edges func() []obs.WaitEdge) *httptest.Server {
	t.Helper()
	adm := &obs.Admin{Registries: []*obs.Registry{reg}, Tracer: tr, WaitEdges: edges}
	srv := httptest.NewServer(adm.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPSourceScrape: the full HTTP round trip — registry → WriteProm →
// scrape → ParsePromText, plus spans and wait edges over JSON — matches
// direct local access.
func TestHTTPSourceScrape(t *testing.T) {
	reg := obs.New().Label("server", "fs1")
	reg.Counter("engine_commits_total").Add(17)
	reg.Histogram("wal_sync_seconds").Observe(3 * time.Millisecond)
	tr := obs.NewTracerCfg(obs.TracerConfig{SampleRate: 1})
	root := tr.StartRoot(5, "core", "commit")
	tr.StartSpan(root.Ctx(), "db", "wal_fsync").End()
	root.End()
	edges := func() []obs.WaitEdge {
		return []obs.WaitEdge{{WaiterTxn: 1, HolderTxn: 2, WaiterTrace: 10, HolderTrace: 20}}
	}
	srv := newAdminServer(t, reg, tr, edges)

	src := NewHTTPSource("fs1", srv.URL, time.Second)
	snap, err := src.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["engine_commits_total"] != 17 {
		t.Fatalf("scraped counter = %d, want 17", snap.Counters["engine_commits_total"])
	}
	if h := snap.Hists["wal_sync_seconds"]; h.Count != 1 {
		t.Fatalf("scraped histogram = %+v, want count 1", h)
	}
	spans, err := src.Spans(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("scraped %d spans, want 2", len(spans))
	}
	es, err := src.WaitEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].WaiterTrace != 10 {
		t.Fatalf("scraped edges = %+v", es)
	}
}

// TestHTTPMemberDiesMidFleet: a member's admin server going away turns its
// source into a partial-view error — and the collector keeps serving the
// remaining members. When the member restarts (new server, re-registered
// source), the view is whole again without rebuilding the collector.
func TestHTTPMemberDiesMidFleet(t *testing.T) {
	regA := obs.New().Label("server", "fs1")
	regA.Counter("engine_commits_total").Add(5)
	srvA := newAdminServer(t, regA, nil, nil)

	regB := obs.New().Label("server", "fs2")
	regB.Counter("engine_commits_total").Add(9)
	srvB := httptest.NewServer((&obs.Admin{Registries: []*obs.Registry{regB}}).Handler())

	c := NewCollector(
		NewHTTPSource("fs1", srvA.URL, time.Second),
		NewHTTPSource("fs2", srvB.URL, time.Second),
	)
	view := c.Federate()
	if len(view.Errors) != 0 || view.Agg.Counters["engine_commits_total"] != 14 {
		t.Fatalf("healthy fleet view wrong: agg=%v errors=%v", view.Agg.Counters, view.Errors)
	}

	// fs2 dies mid-fleet.
	srvB.Close()
	view = c.Federate()
	if view.Errors["fs2"] == "" {
		t.Fatalf("dead member not surfaced: %v", view.Errors)
	}
	if view.Agg.Counters["engine_commits_total"] != 5 {
		t.Fatalf("partial aggregate = %v, want fs1 only", view.Agg.Counters)
	}
	// Stitch and wait-graph stay partial-tolerant too.
	st := c.Stitch(1)
	if st.Errors["fs2"] == "" {
		t.Fatalf("stitch did not report dead member: %+v", st.Errors)
	}
	g := c.MergeWaitGraph()
	if g.Errors["fs2"] == "" {
		t.Fatalf("waitgraph did not report dead member: %+v", g.Errors)
	}

	// fs2 restarts on a fresh port; swapping the source heals the fleet.
	srvB2 := httptest.NewServer((&obs.Admin{Registries: []*obs.Registry{regB}}).Handler())
	defer srvB2.Close()
	c.Remove("fs2")
	c.Add(NewHTTPSource("fs2", srvB2.URL, time.Second))
	view = c.Federate()
	if len(view.Errors) != 0 || view.Agg.Counters["engine_commits_total"] != 14 {
		t.Fatalf("healed fleet view wrong: agg=%v errors=%v", view.Agg.Counters, view.Errors)
	}
}

// TestPlaneEndpointsOverHTTP: the four /cluster/* endpoints answer over a
// real listener, with the watchdog flagging an unreachable member.
func TestPlaneEndpointsOverHTTP(t *testing.T) {
	reg := obs.New().Label("server", "fs1")
	reg.Counter("engine_commits_total").Add(2)
	adminSrv := newAdminServer(t, reg, nil, nil)

	deadSrv := httptest.NewServer((&obs.Admin{}).Handler())
	deadSrv.Close()

	p := NewPlane([]Source{
		NewHTTPSource("fs1", adminSrv.URL, time.Second),
		NewHTTPSource("fs2", deadSrv.URL, time.Second),
	}, HealthConfig{FlagAfter: 1})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, buf.String())
		}
		return buf.String()
	}

	metrics := get("/cluster/metrics")
	for _, want := range []string{
		`fleet_member_up{member="fs1"} 1`,
		`fleet_member_up{member="fs2"} 0`,
		`engine_commits_total{member="fs1"} 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/cluster/metrics missing %q:\n%s", want, metrics)
		}
	}
	var rep HealthReport
	if err := json.Unmarshal([]byte(get("/cluster/health?check=1")), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) != 1 || rep.Degraded[0] != "fs2" {
		t.Fatalf("/cluster/health degraded = %v, want [fs2]", rep.Degraded)
	}
	if out := get("/cluster/waitgraph"); !strings.Contains(out, `"errors"`) {
		t.Fatalf("/cluster/waitgraph did not surface dead member:\n%s", out)
	}
	var st StitchedTrace
	if err := json.Unmarshal([]byte(get("/cluster/txn/1")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Trace != 1 || st.Errors["fs2"] == "" {
		t.Fatalf("/cluster/txn/1 = %+v, want trace 1 with fs2 error", st)
	}
}
