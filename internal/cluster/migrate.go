package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/rpc"
	"repro/internal/wal"
)

// Online slot migration. A slot moves in five steps:
//
//  1. bulk copy: manifest the source's linked files, filter to the slot,
//     and install file bytes + linked entries at the target inside one
//     host-coordinated 2PC transaction. Writers keep hitting the source.
//  2. fence: block new writers for the slot and wait out in-flight ones.
//  3. drain: poll each side's retained WAL (reusing the internal/repl log
//     shipping protocol) until every transaction that touched the slot has
//     a commit or abort on record — the moment that side's slot state is
//     final. The scan starts at the log's beginning, not at a move-start
//     snapshot: a transaction that linked into the slot long before the
//     move and is still in flight has a dirty row sitting in both
//     manifests, and only its pre-move data record reveals it. The target
//     is drained too: a failed earlier round can leave its own migration
//     transaction prepared there, equally dirty in the manifest.
//  4. delta: re-manifest both sides (now quiesced for this slot) and
//     converge the target — late links copied over, bulk-copied files that
//     were unlinked removed — then delete the slot's entries at the source,
//     each side in its own 2PC transaction.
//  5. cutover: flip the slot's owner, persist the new table version, and
//     unfence; blocked writers wake and re-route to the new owner.
//
// Every transactional step runs under a transaction id minted (and marked
// live) by the host, so concurrent indoubt resolution never presumes abort
// for a migration mid-2PC — and if the mover dies between prepare and
// commit, presumed abort rolls the half-move back and the old owner stands.
// The step order is crash-safe too: the source delete commits before the
// owner flip, and until the flip commits readers dual-read both ends.

// Hooks is what the host database lends the mover. The cluster package
// deliberately does not import hostdb; these closures carry exactly the
// coordinator capabilities a move needs.
type Hooks struct {
	// Dial opens a fresh connection (= DLFM child agent) to a member.
	Dial func(server string) (*rpc.Client, error)
	// BeginTxn mints a host transaction id and marks it owned by a live
	// coordinator; EndTxn releases it. The pair brackets each migration
	// transaction so indoubt resolution leaves it alone (the PR-3 rule).
	BeginTxn func() int64
	EndTxn   func(int64)
	// ResolveIndoubts nudges the host's resolution machinery between drain
	// rounds, so transactions orphaned by a dead coordinator cannot stall
	// the cutover.
	ResolveIndoubts func()
	// NoteGroup records that a file group now has files on a server (the
	// host's dl_grpsrv registry), keeping DROP TABLE's delete-group fan-out
	// placement-aware after a move.
	NoteGroup func(grp int64, server string) error
	Tracer    *obs.Tracer
}

// Mover executes slot migrations against a Map.
type Mover struct {
	m *Map
	h Hooks
	// DrainTimeout bounds step 4. It should stay below the Map's
	// FenceTimeout: when a stalled transaction blocks the drain, the move
	// aborts and unfences before fenced writers start timing out.
	DrainTimeout time.Duration
	// BatchMax caps records per drain fetch; 0 = feed default.
	BatchMax int
}

// NewMover builds a mover; hooks must be fully populated except Tracer.
func NewMover(m *Map, h Hooks) *Mover {
	return &Mover{m: m, h: h, DrainTimeout: 5 * time.Second}
}

// manifestEntry is one linked file in a member's inventory.
type manifestEntry struct {
	recID int64
	grp   int64
	owner string
	// flags are the file's group attributes: bit 0 recovery, bit 1 full
	// control. They ride along so the target recreates the group as-is.
	flags int64
}

// Run executes moves sequentially, stopping at the first failure; it
// returns how many files the completed moves migrated.
func (mv *Mover) Run(moves []Move) (int, error) {
	files := 0
	for _, m := range moves {
		n, err := mv.MoveSlot(m)
		files += n
		if err != nil {
			return files, err
		}
	}
	return files, nil
}

// MoveSlot migrates one slot online. On error the move is aborted: the
// slot unfences with its old owner intact (half-copied target entries are
// rolled back by their own transaction's abort or by presumed abort).
func (mv *Mover) MoveSlot(move Move) (int, error) {
	ms, err := mv.m.beginMove(move)
	if err != nil {
		return 0, err
	}
	files, err := mv.runMove(ms)
	if err != nil {
		mv.m.abortMove(ms)
		return 0, fmt.Errorf("cluster %s: move slot %d %s->%s: %w",
			mv.m.name, move.Slot, move.From, move.To, err)
	}
	if err := mv.m.commitMove(ms, files); err != nil {
		// The owner flip could not be persisted; the slot stays with the
		// old owner. The source's entries were already deleted, so this
		// (host-engine-down) case needs the move re-run once the store
		// recovers; dual-read covered readers up to this point.
		mv.m.abortMove(ms)
		return 0, fmt.Errorf("cluster %s: cutover of slot %d: %w", mv.m.name, move.Slot, err)
	}
	return files, nil
}

func (mv *Mover) runMove(ms *moveState) (int, error) {
	slot, from, to := ms.mv.Slot, ms.mv.From, ms.mv.To
	src, err := mv.h.Dial(from)
	if err != nil {
		return 0, fmt.Errorf("dial source: %w", err)
	}
	defer src.Close()
	tgt, err := mv.h.Dial(to)
	if err != nil {
		return 0, fmt.Errorf("dial target: %w", err)
	}
	defer tgt.Close()

	trace := mv.h.BeginTxn()
	mv.h.EndTxn(trace)
	root := mv.h.Tracer.StartRoot(trace, "cluster", "move_slot").
		Attr("slot", fmt.Sprintf("%d", slot)).Attr("from", from).Attr("to", to)
	defer root.End()

	// 1. Bulk copy, unfenced: writers still run against the source, and
	// the manifest may even include uncommitted links — the post-drain
	// delta pass reconciles both.
	sp := mv.h.Tracer.StartSpan(root.Ctx(), "cluster", "bulk_copy")
	bulk, err := mv.manifest(src, slot)
	if err != nil {
		sp.End()
		return 0, fmt.Errorf("source manifest: %w", err)
	}
	if len(bulk) > 0 {
		if err := mv.copyFiles(src, tgt, bulk); err != nil {
			sp.End()
			return 0, fmt.Errorf("bulk copy: %w", err)
		}
	}
	sp.Attr("files", fmt.Sprintf("%d", len(bulk))).End()

	// 2. Fence the slot.
	sp = mv.h.Tracer.StartSpan(root.Ctx(), "cluster", "fence")
	err = mv.m.fence(ms)
	sp.End()
	if err != nil {
		return 0, err
	}

	// 3. Drain: the slot's source state is final once no transaction that
	// ever touched it is still undecided.
	sp = mv.h.Tracer.StartSpan(root.Ctx(), "cluster", "drain")
	err = mv.drain(src, slot)
	sp.End()
	if err != nil {
		return 0, err
	}
	// The target needs the same treatment before the delta manifests: an
	// earlier failed round of this move can leave a migration transaction
	// prepared at the target (its CommitReq lost to a kill or a dropped
	// connection), and the DumpTable manifest reads its uncommitted writes.
	// Converging on that dirty state and cutting over would let a later
	// presumed abort mutate the slot post-cutover — inserts vanish (lost
	// links) or deltadeletes roll back (orphan linked entries with no host
	// row). Draining the target settles every such transaction first; the
	// drain's ResolveIndoubts kicks let presumed abort do its work.
	sp = mv.h.Tracer.StartSpan(root.Ctx(), "cluster", "drain_target")
	err = mv.drain(tgt, slot)
	sp.End()
	if err != nil {
		return 0, err
	}

	// 4a. Delta: converge the target onto the source's final slot state.
	final, err := mv.manifest(src, slot)
	if err != nil {
		return 0, fmt.Errorf("final manifest: %w", err)
	}
	have, err := mv.manifest(tgt, slot)
	if err != nil {
		return 0, fmt.Errorf("target manifest: %w", err)
	}
	var adds map[string]manifestEntry
	var dels []string
	for name, e := range final {
		if h, ok := have[name]; !ok || h.recID != e.recID {
			if adds == nil {
				adds = make(map[string]manifestEntry)
			}
			adds[name] = e
		}
	}
	for name := range have {
		if _, ok := final[name]; !ok {
			dels = append(dels, name)
		}
	}
	if len(adds) > 0 || len(dels) > 0 {
		sp = mv.h.Tracer.StartSpan(root.Ctx(), "cluster", "delta").
			Attr("adds", fmt.Sprintf("%d", len(adds))).Attr("dels", fmt.Sprintf("%d", len(dels)))
		err := mv.inTxn(tgt, func(txn int64) error {
			for name, e := range adds {
				if err := mv.putFile(src, tgt, txn, name, e); err != nil {
					return err
				}
			}
			if len(dels) > 0 {
				resp, err := tgt.Call(rpc.MigrateDelReq{Txn: txn, Names: dels})
				if err != nil {
					return err
				}
				if !resp.OK() {
					return fmt.Errorf("target delta delete: %s: %s", resp.Code, resp.Msg)
				}
			}
			return nil
		})
		sp.End()
		if err != nil {
			return 0, fmt.Errorf("delta sync: %w", err)
		}
	}

	// 4b. Delete the slot's entries at the source. This commits before the
	// owner flip: until the flip, readers dual-read and find the entries
	// at the target.
	if len(final) > 0 {
		names := make([]string, 0, len(final))
		for name := range final {
			names = append(names, name)
		}
		sp = mv.h.Tracer.StartSpan(root.Ctx(), "cluster", "source_delete")
		err := mv.inTxn(src, func(txn int64) error {
			resp, err := src.Call(rpc.MigrateDelReq{Txn: txn, Names: names})
			if err != nil {
				return err
			}
			if !resp.OK() {
				return fmt.Errorf("source delete: %s: %s", resp.Code, resp.Msg)
			}
			return nil
		})
		sp.End()
		if err != nil {
			return 0, fmt.Errorf("source cleanup: %w", err)
		}
	}

	// Group placement bookkeeping for the groups that now live on the
	// target, before the cutover makes them routable.
	if mv.h.NoteGroup != nil {
		grps := map[int64]bool{}
		for _, e := range final {
			grps[e.grp] = true
		}
		for grp := range grps {
			if err := mv.h.NoteGroup(grp, to); err != nil {
				return 0, fmt.Errorf("note group %d at %s: %w", grp, to, err)
			}
		}
	}
	return len(final), nil
}

// manifest fetches a member's linked-file inventory filtered to one slot.
func (mv *Mover) manifest(c *rpc.Client, slot int) (map[string]manifestEntry, error) {
	resp, err := c.Call(rpc.MigrateManifestReq{})
	if err != nil {
		return nil, err
	}
	if !resp.OK() {
		return nil, fmt.Errorf("manifest: %s: %s", resp.Code, resp.Msg)
	}
	out := make(map[string]manifestEntry)
	for i, name := range resp.Names {
		if SlotOf(name, mv.m.Slots()) != slot {
			continue
		}
		out[name] = manifestEntry{recID: resp.RecIDs[i], grp: resp.Grps[i], owner: resp.Owners[i], flags: resp.Flags[i]}
	}
	return out, nil
}

// copyFiles installs entries at the target in one 2PC transaction.
func (mv *Mover) copyFiles(src, tgt *rpc.Client, entries map[string]manifestEntry) error {
	return mv.inTxn(tgt, func(txn int64) error {
		for name, e := range entries {
			if err := mv.putFile(src, tgt, txn, name, e); err != nil {
				return err
			}
		}
		return nil
	})
}

// putFile moves one file's bytes and entry. A file that vanished from the
// source since the manifest (uncommitted link that aborted, or an unlink
// racing the bulk copy) is skipped — the delta pass sees the truth.
func (mv *Mover) putFile(src, tgt *rpc.Client, txn int64, name string, e manifestEntry) error {
	fr, err := src.Call(rpc.FetchFileReq{Name: name})
	if err != nil {
		return err
	}
	if fr.Code == "nofile" {
		return nil
	}
	if !fr.OK() {
		return fmt.Errorf("fetch %s: %s: %s", name, fr.Code, fr.Msg)
	}
	owner := e.owner
	if owner == "" {
		owner = fr.Msg
	}
	resp, err := tgt.Call(rpc.MigratePutReq{
		Txn: txn, Name: name, RecID: e.recID, Grp: e.grp, Owner: owner,
		Data: fr.Data, Recovery: e.flags&1 != 0, FullControl: e.flags&2 != 0,
	})
	if err != nil {
		return err
	}
	if !resp.OK() {
		return fmt.Errorf("put %s: %s: %s", name, resp.Code, resp.Msg)
	}
	return nil
}

// inTxn brackets fn in a host-minted 2PC transaction against one member:
// BeginTransaction, fn, prepare, commit — abort on any failure. The host
// marks the id live for the duration, so indoubt resolution cannot presume
// abort mid-move.
func (mv *Mover) inTxn(c *rpc.Client, fn func(txn int64) error) error {
	txn := mv.h.BeginTxn()
	defer mv.h.EndTxn(txn)
	resp, err := c.Call(rpc.BeginTxnReq{Txn: txn})
	if err == nil && !resp.OK() {
		err = fmt.Errorf("begin: %s: %s", resp.Code, resp.Msg)
	}
	if err != nil {
		return err
	}
	abort := func() {
		c.Call(rpc.AbortReq{Txn: txn}) //nolint:errcheck
	}
	if err := fn(txn); err != nil {
		abort()
		return err
	}
	resp, err = c.Call(rpc.PrepareReq{Txn: txn})
	if err == nil && !resp.OK() {
		err = fmt.Errorf("prepare: %s: %s", resp.Code, resp.Msg)
	}
	if err != nil {
		abort()
		return err
	}
	resp, err = c.Call(rpc.CommitReq{Txn: txn})
	if err == nil && !resp.OK() {
		err = fmt.Errorf("commit: %s: %s", resp.Code, resp.Msg)
	}
	if err != nil {
		// Prepared but the commit outcome is unknown: presumed abort
		// resolves it once EndTxn releases the id.
		return err
	}
	return nil
}

// drain polls the source's retained WAL from its beginning until every
// transaction that touched the slot is decided (commit or abort on record
// — local rollbacks append an abort record too), kicking indoubt resolution
// between rounds. Scanning from LSN 0 rather than a move-start snapshot is
// what catches a transaction that wrote into the slot before the move began
// and is still in flight: its dirty entry is visible to DumpTable manifests
// and must not survive a cutover it could later abort out of.
func (mv *Mover) drain(src *rpc.Client, slot int) error {
	deadline := time.Now().Add(mv.DrainTimeout)
	bo := fault.Backoff{Base: 10 * time.Millisecond, Cap: 150 * time.Millisecond}
	for attempt := 0; ; attempt++ {
		recs, _, err := repl.FetchRange(src, 0, math.MaxInt64, mv.BatchMax)
		if err != nil {
			return fmt.Errorf("drain fetch: %w", err)
		}
		if n := mv.undecided(recs, slot); n == 0 {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("drain: %d transactions touching slot %d still undecided after %v",
				n, slot, mv.DrainTimeout)
		}
		if mv.h.ResolveIndoubts != nil {
			mv.h.ResolveIndoubts()
		}
		// Capped backoff with jitter: an undecided transaction usually
		// settles within a round trip, but a crashed coordinator takes a
		// resolution pass — polling flat-out just contends with it.
		time.Sleep(bo.Delay(attempt))
	}
}

// undecided counts transactions with slot-touching dlfm_file writes whose
// outcome is not final. A local commit/abort record is necessary but not
// sufficient: under the delayed-update scheme a 2PC participant COMMITS its
// local transaction at prepare time (hardening a dlfm_txn row in state 'P')
// and a later global abort compensates in a fresh local transaction. Such a
// transaction has RecCommit in the stream while its slot writes can still
// be undone — treating it as decided is how a cutover used to race phase 2
// and strand orphan or resurrected entries. So a transaction that prepared
// (dlfm_txn 'P') stays undecided until the global decision reaches this
// member: a committed 'C' mark or a committed delete of its dlfm_txn row.
func (mv *Mover) undecided(recs []wal.Record, slot int) int {
	touched := map[int64]bool{}   // local txns with slot-touching dlfm_file writes
	committed := map[int64]bool{} // local txns with a commit record
	decided := map[int64]bool{}   // local txns with a commit or abort record
	pendingOf := map[int64]int64{}  // prepare local txn -> global txn id
	resolvers := map[int64][]int64{} // global txn id -> local txns carrying its decision
	for _, r := range recs {
		switch r.Type {
		case wal.RecInsert, wal.RecDelete, wal.RecUpdate:
			row := r.After
			if len(row) == 0 {
				row = r.Before
			}
			switch r.Table {
			case "dlfm_file":
				if len(row) == 0 {
					continue
				}
				if SlotOf(row[0].Text(), mv.m.Slots()) == slot {
					touched[r.Txn] = true
				}
			case "dlfm_txn":
				// Columns: txnid (global id), state, ngroups, ts.
				if len(row) < 2 {
					continue
				}
				gid := row[0].Int64()
				if st := row[1].Text(); r.Type != wal.RecDelete && (st == "P" || st == "F") {
					// 'P' = prepared, 'F' = in-flight batched local commit;
					// both mean local effects without a global decision.
					pendingOf[r.Txn] = gid
				} else {
					// 'C' mark, row delete (abort compensation), or any
					// other state change: a decision attempt for gid. It
					// only counts once its own local transaction commits.
					resolvers[gid] = append(resolvers[gid], r.Txn)
				}
			}
		case wal.RecCommit:
			committed[r.Txn] = true
			decided[r.Txn] = true
		case wal.RecAbort:
			decided[r.Txn] = true
		}
	}
	resolved := func(gid int64) bool {
		for _, txn := range resolvers[gid] {
			if committed[txn] {
				return true
			}
		}
		return false
	}
	n := 0
	for txn := range touched {
		if !decided[txn] {
			n++
			continue
		}
		// Only a COMMITTED prepare pends on the global decision — a local
		// abort rolled the 'P' row back along with the slot writes.
		if gid, ok := pendingOf[txn]; ok && committed[txn] && !resolved(gid) {
			n++ // locally committed at prepare, globally still in doubt
		}
	}
	return n
}
