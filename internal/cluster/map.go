package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Store persists placement tables. The host database implements it against
// the dl_cluster/dl_placement tables so placement survives a host restart
// with the same durability as the dl_cols registry it lives beside.
type Store interface {
	SaveTable(name string, t Table) error
	// LoadTable returns the persisted table and whether one exists.
	LoadTable(name string) (Table, bool, error)
}

// Config tunes one placement map.
type Config struct {
	// Slots is the ring size; zero means DefaultSlots.
	Slots int
	// FenceTimeout bounds both a writer's wait on a fenced slot and the
	// mover's wait for in-flight writers to drain. Zero means 10s.
	FenceTimeout time.Duration
	// Store persists table versions; nil keeps placement in memory only.
	Store Store
	// Obs receives the cluster_* metrics. Nil disables them.
	Obs *obs.Registry
	// Tracer receives migration spans. Nil disables them.
	Tracer *obs.Tracer
}

// moveState is one in-flight slot migration.
type moveState struct {
	mv     Move
	fenced bool
	// unfenced is closed when the move commits or aborts; writers blocked
	// on the fence wake and re-route against the new table.
	unfenced chan struct{}
	// drained is closed when the slot's in-flight writer count hits zero
	// while fenced; nil when nobody is waiting.
	drained chan struct{}
	started time.Time
}

// Map is one logical namespace's routing state: the current placement
// table, the registered member set, and the per-slot move/fence machinery.
// All methods are safe for concurrent use.
type Map struct {
	name string
	cfg  Config

	mu       sync.Mutex
	table    Table
	members  map[string]bool
	moving   map[int]*moveState
	inflight []int // per-slot writers currently holding a route
	// degraded marks members the fleet health monitor has flagged; they
	// keep owning their slots (correctness is unaffected) but read routing
	// deprioritizes them and drains avoid them as targets.
	degraded map[string]bool

	routes        obs.Counter
	fenceWaits    obs.Counter
	fenceTimeouts obs.Counter
	moves         obs.Counter
	moveFails     obs.Counter
	movedFiles    obs.Counter
	moveHist      *obs.Histogram
}

// New creates (or, when cfg.Store holds a table under this name, recovers)
// a placement map. A recovered table re-derives its member set from the
// slot owners; members that owned nothing must be re-added by the caller.
func New(name string, cfg Config) (*Map, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.FenceTimeout <= 0 {
		cfg.FenceTimeout = 10 * time.Second
	}
	m := &Map{
		name:     name,
		cfg:      cfg,
		table:    Table{Slots: cfg.Slots, Owners: make([]string, cfg.Slots)},
		members:  make(map[string]bool),
		moving:   make(map[int]*moveState),
		degraded: make(map[string]bool),
		moveHist: obs.NewHistogram(),
	}
	if cfg.Store != nil {
		t, ok, err := cfg.Store.LoadTable(name)
		if err != nil {
			return nil, fmt.Errorf("cluster %s: load placement: %w", name, err)
		}
		if ok {
			if t.Slots != cfg.Slots && t.Slots > 0 {
				// The persisted ring wins: slot hashing must stay
				// consistent with the owners on disk.
				cfg.Slots = t.Slots
				m.cfg.Slots = t.Slots
			}
			m.table = t.clone()
			for _, o := range t.Members() {
				m.members[o] = true
			}
		}
	}
	m.inflight = make([]int, m.table.Slots)
	m.register(cfg.Obs)
	return m, nil
}

func (m *Map) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cluster_members", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.members))
	})
	reg.GaugeFunc("cluster_table_version", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.table.Version)
	})
	reg.GaugeFunc("cluster_moves_inflight", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.moving))
	})
	reg.GaugeFunc("cluster_degraded_members", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.degraded))
	})
	reg.RegisterCounter("cluster_routes_total", &m.routes)
	reg.RegisterCounter("cluster_fence_waits_total", &m.fenceWaits)
	reg.RegisterCounter("cluster_fence_timeouts_total", &m.fenceTimeouts)
	reg.RegisterCounter("cluster_moves_total", &m.moves)
	reg.RegisterCounter("cluster_move_failures_total", &m.moveFails)
	reg.RegisterCounter("cluster_migrated_files_total", &m.movedFiles)
	reg.RegisterHistogram("cluster_move_seconds", m.moveHist)
}

// Name returns the logical server name this map routes.
func (m *Map) Name() string { return m.name }

// Slots returns the ring size.
func (m *Map) Slots() int { return m.table.Slots }

// Version returns the current table version.
func (m *Map) Version() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.table.Version
}

// Members returns the sorted registered member set.
func (m *Map) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members))
	for s := range m.members {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// HasMember reports membership.
func (m *Map) HasMember(server string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.members[server]
}

// SetDegraded flags (or clears) a member as degraded. Ownership is
// untouched — a degraded member still serves its slots — but ReadOwners
// orders healthy replicas first and DrainPlan avoids degraded targets.
// Flagging a name that is not (or no longer) a member is harmless: health
// monitoring races membership changes by design.
func (m *Map) SetDegraded(server string, degraded bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if degraded {
		m.degraded[server] = true
	} else {
		delete(m.degraded, server)
	}
}

// Degraded returns the sorted set of currently flagged members.
func (m *Map) Degraded() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.degraded))
	for s := range m.degraded {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IsDegraded reports whether server is currently flagged.
func (m *Map) IsDegraded(server string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded[server]
}

// Snapshot returns a copy of the current table.
func (m *Map) Snapshot() Table {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.table.clone()
}

// Owner returns the member currently owning path (no fence interaction,
// for read paths and diagnostics).
func (m *Map) Owner(path string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.table.Owners[SlotOf(path, m.table.Slots)]
}

// ReadOwners returns every member that may hold path's link state right
// now: the current owner, plus the move target while the path's slot is
// mid-migration (dual read). Consistency checking accepts either side
// during a move. Healthy members sort ahead of degraded ones, so a read
// path that tries owners in order lands on a healthy replica when the
// fleet health monitor has flagged one side of a move.
func (m *Map) ReadOwners(path string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot := SlotOf(path, m.table.Slots)
	owners := []string{m.table.Owners[slot]}
	if ms := m.moving[slot]; ms != nil && ms.mv.To != owners[0] {
		owners = append(owners, ms.mv.To)
	}
	if len(owners) > 1 && m.degraded[owners[0]] && !m.degraded[owners[1]] {
		owners[0], owners[1] = owners[1], owners[0]
	}
	return owners
}

// WriteOwner routes a link/unlink for path: it blocks while the path's
// slot is fenced for cutover (bounded by FenceTimeout), registers the
// caller as an in-flight writer, and returns the owning member plus a
// release callback the caller must invoke once its DLFM call returns.
func (m *Map) WriteOwner(path string) (string, func(), error) {
	slot := SlotOf(path, m.table.Slots)
	deadline := time.Now().Add(m.cfg.FenceTimeout)
	m.mu.Lock()
	for {
		ms := m.moving[slot]
		if ms == nil || !ms.fenced {
			break
		}
		ch := ms.unfenced
		m.mu.Unlock()
		m.fenceWaits.Inc()
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
			m.fenceTimeouts.Inc()
			return "", nil, fmt.Errorf("cluster %s: slot %d fenced for cutover too long (%s -> %s)",
				m.name, slot, ms.mv.From, ms.mv.To)
		}
		m.mu.Lock()
	}
	owner := m.table.Owners[slot]
	if owner == "" {
		m.mu.Unlock()
		return "", nil, fmt.Errorf("cluster %s has no members", m.name)
	}
	m.inflight[slot]++
	m.mu.Unlock()
	m.routes.Inc()
	var once sync.Once
	release := func() {
		once.Do(func() {
			m.mu.Lock()
			m.inflight[slot]--
			if ms := m.moving[slot]; ms != nil && ms.fenced && m.inflight[slot] == 0 && ms.drained != nil {
				close(ms.drained)
				ms.drained = nil
			}
			m.mu.Unlock()
		})
	}
	return owner, release, nil
}

// Join registers a new member and returns the slot moves that hand it its
// rendezvous share. The first member bootstraps the whole table with no
// moves. Routing keeps using the old owners until each move commits.
func (m *Map) Join(server string) ([]Move, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.members[server] {
		return nil, fmt.Errorf("cluster %s: member %s already joined", m.name, server)
	}
	m.members[server] = true
	if len(m.members) == 1 {
		for s := range m.table.Owners {
			m.table.Owners[s] = server
		}
		m.table.Version++
		if err := m.persistLocked(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	target := assign(m.memberListLocked(), m.table.Slots)
	return movesTo(m.table.Owners, target), nil
}

// DrainPlan returns the moves that empty a member (each of its slots goes
// to its rendezvous winner among the remaining members). The member stays
// registered — and keeps receiving routes for its not-yet-moved slots —
// until RemoveMember.
func (m *Map) DrainPlan(server string) ([]Move, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.members[server] {
		return nil, fmt.Errorf("cluster %s: %s is not a member", m.name, server)
	}
	rest := make([]string, 0, len(m.members)-1)
	for s := range m.members {
		if s != server {
			rest = append(rest, s)
		}
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("cluster %s: cannot drain the last member %s", m.name, server)
	}
	// Don't pour a drain onto a member the health monitor has flagged —
	// unless every survivor is flagged, in which case capacity wins.
	healthy := rest[:0:len(rest)]
	for _, s := range rest {
		if !m.degraded[s] {
			healthy = append(healthy, s)
		}
	}
	if len(healthy) > 0 {
		rest = healthy
	}
	sort.Strings(rest)
	var out []Move
	for slot, o := range m.table.Owners {
		if o == server {
			out = append(out, Move{Slot: slot, From: server, To: bestOwner(rest, slot)})
		}
	}
	return out, nil
}

// PlanMove pins one slot onto an explicit member — the hot-group rebalance
// primitive. The pin survives until the next membership change recomputes
// the slot's rendezvous owner.
func (m *Map) PlanMove(slot int, to string) (Move, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if slot < 0 || slot >= m.table.Slots {
		return Move{}, fmt.Errorf("cluster %s: slot %d out of range [0,%d)", m.name, slot, m.table.Slots)
	}
	if !m.members[to] {
		return Move{}, fmt.Errorf("cluster %s: %s is not a member", m.name, to)
	}
	from := m.table.Owners[slot]
	if from == to {
		return Move{}, fmt.Errorf("cluster %s: slot %d already on %s", m.name, slot, to)
	}
	return Move{Slot: slot, From: from, To: to}, nil
}

// PlanRebalance returns the moves that take the table to the pure
// rendezvous assignment for the current member set — the retry after a
// partially failed join, and the cleanup for stale PlanMove pins.
func (m *Map) PlanRebalance() []Move {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.members) == 0 {
		return nil
	}
	return movesTo(m.table.Owners, assign(m.memberListLocked(), m.table.Slots))
}

// RemoveMember deregisters a drained member. It refuses while the member
// still owns slots (run the drain first).
func (m *Map) RemoveMember(server string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.members[server] {
		return fmt.Errorf("cluster %s: %s is not a member", m.name, server)
	}
	for slot, o := range m.table.Owners {
		if o == server {
			return fmt.Errorf("cluster %s: %s still owns slot %d; drain it first", m.name, server, slot)
		}
	}
	delete(m.members, server)
	return nil
}

func (m *Map) memberListLocked() []string {
	out := make([]string, 0, len(m.members))
	for s := range m.members {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (m *Map) persistLocked() error {
	if m.cfg.Store == nil {
		return nil
	}
	if err := m.cfg.Store.SaveTable(m.name, m.table); err != nil {
		return fmt.Errorf("cluster %s: persist placement v%d: %w", m.name, m.table.Version, err)
	}
	return nil
}

// beginMove claims a slot for migration. Routing still sends writers to
// the old owner (unfenced) until fence.
func (m *Map) beginMove(mv Move) (*moveState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur := m.table.Owners[mv.Slot]; cur != mv.From {
		return nil, fmt.Errorf("cluster %s: slot %d owned by %s, not %s", m.name, mv.Slot, cur, mv.From)
	}
	if !m.members[mv.To] {
		return nil, fmt.Errorf("cluster %s: move target %s is not a member", m.name, mv.To)
	}
	if _, busy := m.moving[mv.Slot]; busy {
		return nil, fmt.Errorf("cluster %s: slot %d already migrating", m.name, mv.Slot)
	}
	ms := &moveState{mv: mv, unfenced: make(chan struct{}), started: time.Now()}
	m.moving[mv.Slot] = ms
	return ms, nil
}

// fence blocks new writers for the slot and waits for in-flight ones to
// release, bounded by FenceTimeout.
func (m *Map) fence(ms *moveState) error {
	m.mu.Lock()
	ms.fenced = true
	var drained chan struct{}
	if m.inflight[ms.mv.Slot] > 0 {
		drained = make(chan struct{})
		ms.drained = drained
	}
	m.mu.Unlock()
	if drained == nil {
		return nil
	}
	select {
	case <-drained:
		return nil
	case <-time.After(m.cfg.FenceTimeout):
		m.fenceTimeouts.Inc()
		return fmt.Errorf("cluster %s: slot %d writers did not drain within %v", m.name, ms.mv.Slot, m.cfg.FenceTimeout)
	}
}

// commitMove flips the slot's owner, bumps and persists the table version,
// and unfences. files is the migrated-entry count, for the metrics.
func (m *Map) commitMove(ms *moveState, files int) error {
	m.mu.Lock()
	m.table.Owners[ms.mv.Slot] = ms.mv.To
	m.table.Version++
	if err := m.persistLocked(); err != nil {
		// The flip is not visible without its persisted version: revert.
		m.table.Owners[ms.mv.Slot] = ms.mv.From
		m.table.Version--
		m.mu.Unlock()
		return err
	}
	delete(m.moving, ms.mv.Slot)
	close(ms.unfenced)
	m.mu.Unlock()
	m.moves.Inc()
	m.movedFiles.Add(int64(files))
	m.moveHist.Observe(time.Since(ms.started))
	return nil
}

// abortMove releases the slot claim and unfences; ownership is unchanged.
func (m *Map) abortMove(ms *moveState) {
	m.mu.Lock()
	delete(m.moving, ms.mv.Slot)
	close(ms.unfenced)
	m.mu.Unlock()
	m.moveFails.Inc()
}

// Describe renders the /debug/cluster payload.
func (m *Map) Describe() any {
	m.mu.Lock()
	defer m.mu.Unlock()
	perMember := map[string][]int{}
	for slot, o := range m.table.Owners {
		perMember[o] = append(perMember[o], slot)
	}
	var moving []map[string]any
	for _, ms := range m.moving {
		moving = append(moving, map[string]any{
			"slot": ms.mv.Slot, "from": ms.mv.From, "to": ms.mv.To,
			"fenced": ms.fenced, "elapsed": time.Since(ms.started).String(),
		})
	}
	inflight := 0
	for _, n := range m.inflight {
		inflight += n
	}
	var degraded []string
	for s := range m.degraded {
		degraded = append(degraded, s)
	}
	sort.Strings(degraded)
	return map[string]any{
		"cluster":          m.name,
		"version":          m.table.Version,
		"slots":            m.table.Slots,
		"members":          m.memberListLocked(),
		"degraded":         degraded,
		"slots_by_member":  perMember,
		"moving":           moving,
		"inflight_writers": inflight,
		"routes":           m.routes.Load(),
		"moves":            m.moves.Load(),
		"move_failures":    m.moveFails.Load(),
		"migrated_files":   m.movedFiles.Load(),
	}
}
