package cluster

import (
	"fmt"
	"testing"
	"time"
)

type memStore struct {
	tables map[string]Table
	fail   bool
}

func newMemStore() *memStore { return &memStore{tables: make(map[string]Table)} }

func (s *memStore) SaveTable(name string, t Table) error {
	if s.fail {
		return fmt.Errorf("store down")
	}
	s.tables[name] = t.clone()
	return nil
}

func (s *memStore) LoadTable(name string) (Table, bool, error) {
	t, ok := s.tables[name]
	return t.clone(), ok, nil
}

func newTestMap(t *testing.T, store Store) *Map {
	t.Helper()
	m, err := New("dlfs", Config{Slots: 32, FenceTimeout: 500 * time.Millisecond, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// applyMoves flips ownership without a mover (no data to migrate).
func applyMoves(t *testing.T, m *Map, moves []Move) {
	t.Helper()
	for _, mv := range moves {
		ms, err := m.beginMove(mv)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.fence(ms); err != nil {
			t.Fatal(err)
		}
		if err := m.commitMove(ms, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRendezvousDeterministicAndComplete(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	got := assign(members, DefaultSlots)
	again := assign([]string{"d", "c", "b", "a"}, DefaultSlots)
	counts := map[string]int{}
	for slot, owner := range got {
		if owner == "" {
			t.Fatalf("slot %d unassigned", slot)
		}
		if again[slot] != owner {
			t.Fatalf("slot %d: assignment depends on member order (%s vs %s)", slot, owner, again[slot])
		}
		counts[owner]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns no slots: %v", m, counts)
		}
	}
}

// Rendezvous hashing's point: adding a member only moves slots TO it, and
// removing one only moves its own slots.
func TestMinimalMovement(t *testing.T) {
	three := assign([]string{"a", "b", "c"}, DefaultSlots)
	four := assign([]string{"a", "b", "c", "d"}, DefaultSlots)
	moves := movesTo(three, four)
	if len(moves) == 0 {
		t.Fatal("expected some slots to move to d")
	}
	for _, mv := range moves {
		if mv.To != "d" {
			t.Fatalf("move %+v: a join must only move slots to the joiner", mv)
		}
	}
	back := movesTo(four, three)
	for _, mv := range back {
		if mv.From != "d" {
			t.Fatalf("move %+v: a removal must only move the removed member's slots", mv)
		}
	}
}

func TestJoinDrainLifecycle(t *testing.T) {
	store := newMemStore()
	m := newTestMap(t, store)

	// First member bootstraps the full table, no moves.
	moves, err := m.Join("a")
	if err != nil || len(moves) != 0 {
		t.Fatalf("bootstrap join: moves=%v err=%v", moves, err)
	}
	if got := m.Owner("/x/1"); got != "a" {
		t.Fatalf("owner = %q, want a", got)
	}

	moves, err = m.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	applyMoves(t, m, moves)
	if err := func() error { _, err := m.Join("b"); return err }(); err == nil {
		t.Fatal("double join must fail")
	}

	// Every path routes to a member; b owns its share.
	owned := map[string]bool{}
	for i := 0; i < 64; i++ {
		owned[m.Owner(fmt.Sprintf("/f/%d", i))] = true
	}
	if !owned["a"] || !owned["b"] {
		t.Fatalf("paths landed on %v, want both members", owned)
	}

	// Drain a: all its slots move to b, then it can be removed.
	if err := m.RemoveMember("a"); err == nil {
		t.Fatal("RemoveMember must refuse while a owns slots")
	}
	plan, err := m.DrainPlan("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range plan {
		if mv.From != "a" || mv.To != "b" {
			t.Fatalf("drain move %+v", mv)
		}
	}
	applyMoves(t, m, plan)
	if err := m.RemoveMember("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DrainPlan("b"); err == nil {
		t.Fatal("draining the last member must fail")
	}

	// Placement survived: a fresh map over the same store sees b everywhere.
	m2 := newTestMap(t, store)
	if got := m2.Owner("/x/1"); got != "b" {
		t.Fatalf("recovered owner = %q, want b", got)
	}
	if m2.Version() != m.Version() {
		t.Fatalf("recovered version %d != %d", m2.Version(), m.Version())
	}
}

func TestWriteOwnerFenceAndCutover(t *testing.T) {
	m := newTestMap(t, nil)
	if _, err := m.Join("a"); err != nil {
		t.Fatal(err)
	}
	moves, err := m.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	mv := moves[0]
	path := pathInSlot(t, m, mv.Slot)

	// An in-flight writer blocks the fence until it releases.
	owner, release, err := m.WriteOwner(path)
	if err != nil {
		t.Fatal(err)
	}
	if owner != mv.From {
		t.Fatalf("pre-move owner = %q, want %q", owner, mv.From)
	}
	ms, err := m.beginMove(mv)
	if err != nil {
		t.Fatal(err)
	}
	fenced := make(chan error, 1)
	go func() { fenced <- m.fence(ms) }()
	select {
	case err := <-fenced:
		t.Fatalf("fence returned %v with a writer in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if err := <-fenced; err != nil {
		t.Fatal(err)
	}

	// A writer arriving during the fence blocks, then routes to the new
	// owner once the move commits.
	routed := make(chan string, 1)
	go func() {
		o, rel, err := m.WriteOwner(path)
		if err != nil {
			routed <- "error: " + err.Error()
			return
		}
		rel()
		routed <- o
	}()
	select {
	case o := <-routed:
		t.Fatalf("fenced writer routed to %q before cutover", o)
	case <-time.After(50 * time.Millisecond):
	}
	if err := m.commitMove(ms, 3); err != nil {
		t.Fatal(err)
	}
	if o := <-routed; o != mv.To {
		t.Fatalf("post-cutover route = %q, want %q", o, mv.To)
	}

	// Dual read covered the move window; now reads see only the new owner.
	owners := m.ReadOwners(path)
	if len(owners) != 1 || owners[0] != mv.To {
		t.Fatalf("ReadOwners = %v, want [%s]", owners, mv.To)
	}
}

func TestFenceTimeoutFailsWriter(t *testing.T) {
	m := newTestMap(t, nil)
	if _, err := m.Join("a"); err != nil {
		t.Fatal(err)
	}
	moves, err := m.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	mv := moves[0]
	ms, err := m.beginMove(mv)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.fence(ms); err != nil {
		t.Fatal(err)
	}
	// The fence is never lifted (mover wedged): the writer errors out at
	// FenceTimeout instead of hanging.
	if _, _, err := m.WriteOwner(pathInSlot(t, m, mv.Slot)); err == nil {
		t.Fatal("WriteOwner under a stuck fence must time out")
	}
	m.abortMove(ms)
	if _, _, err := m.WriteOwner(pathInSlot(t, m, mv.Slot)); err != nil {
		t.Fatalf("after abort: %v", err)
	}
}

func TestCommitMovePersistFailureReverts(t *testing.T) {
	store := newMemStore()
	m := newTestMap(t, store)
	if _, err := m.Join("a"); err != nil {
		t.Fatal(err)
	}
	moves, err := m.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	mv := moves[0]
	ms, err := m.beginMove(mv)
	if err != nil {
		t.Fatal(err)
	}
	ver := m.Version()
	store.fail = true
	if err := m.commitMove(ms, 0); err == nil {
		t.Fatal("commitMove must surface the persist failure")
	}
	if got := m.Snapshot().Owners[mv.Slot]; got != mv.From {
		t.Fatalf("owner after failed persist = %q, want %q", got, mv.From)
	}
	if m.Version() != ver {
		t.Fatalf("version bumped to %d despite failed persist", m.Version())
	}
	m.abortMove(ms)
}

func TestPlanMoveAndRebalance(t *testing.T) {
	m := newTestMap(t, nil)
	if _, err := m.Join("a"); err != nil {
		t.Fatal(err)
	}
	moves, err := m.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	applyMoves(t, m, moves)

	// Pin a slot b does not own onto b, then let rebalance undo the pin.
	pin := -1
	for slot, o := range m.Snapshot().Owners {
		if o == "a" {
			pin = slot
			break
		}
	}
	mv, err := m.PlanMove(pin, "b")
	if err != nil {
		t.Fatal(err)
	}
	applyMoves(t, m, []Move{mv})
	if got := m.Snapshot().Owners[pin]; got != "b" {
		t.Fatalf("pinned slot owned by %q", got)
	}
	re := m.PlanRebalance()
	found := false
	for _, r := range re {
		if r.Slot == pin && r.To == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rebalance plan %v does not return pinned slot %d to a", re, pin)
	}
}

// pathInSlot finds a path hashing into the given slot.
func pathInSlot(t *testing.T, m *Map, slot int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/probe/%d", i)
		if SlotOf(p, m.Slots()) == slot {
			return p
		}
	}
	t.Fatalf("no path found for slot %d", slot)
	return ""
}
