// Package cluster is the host-side placement layer that fronts N DLFMs as
// one logical namespace. A DATALINK URL names a *cluster* instead of a
// physical file server; the placement table — a consistent-hash ring over a
// fixed number of path slots, versioned and persisted in the host database
// alongside the dl_cols registry — decides which member actually owns each
// path. The paper's DLFM is a single file-server resource manager; this
// layer is what lets the reproduction grow past one file server per column
// (ROADMAP open item 1) while keeping every per-member invariant the
// single-server system already enforces: links are still 2PC participants,
// indoubt resolution still runs per physical server, and the consistency
// check still compares each member's dlfm_file state against the host
// registry.
//
// Placement is rendezvous (highest-random-weight) hashing of member names
// per slot: adding a member steals only the slots it now wins, removing a
// member reassigns only the slots it owned — the "minimal movement"
// property that keeps AddDLFM/DrainDLFM migrations proportional to the
// data actually changing owners.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultSlots is the default ring size. It bounds migration granularity
// (a slot is the unit of fencing and cutover), not cluster size; 32 slots
// keep per-slot move overhead low while still spreading 16 members.
const DefaultSlots = 32

// SlotOf maps a file path to its placement slot. The hash must be stable
// across processes and releases — it is persisted indirectly through the
// placement table, and the consistency checker recomputes it.
func SlotOf(path string, slots int) int {
	h := fnv.New32a()
	h.Write([]byte(path)) //nolint:errcheck
	return int(h.Sum32() % uint32(slots))
}

// weight is the rendezvous score of member m for slot s. FNV alone
// avalanches poorly on short keys — the member prefix dominates the high
// bits and one member would win nearly every slot — so the sum is finished
// with a splitmix64-style mix. Must stay stable across releases: the
// persisted table pins owners, but Join/Drain plans recompute weights.
func weight(member string, slot int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", member, slot)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bestOwner returns the rendezvous winner for slot among members.
func bestOwner(members []string, slot int) string {
	var best string
	var bw uint64
	for _, m := range members {
		if w := weight(m, slot); best == "" || w > bw || (w == bw && m < best) {
			best, bw = m, w
		}
	}
	return best
}

// Table is one version of the placement map: every slot's owning member.
// Owners is authoritative (Rebalance may pin a slot away from its
// rendezvous winner); the hash only proposes targets on membership change.
type Table struct {
	Version int64
	Slots   int
	Owners  []string // len == Slots
}

// clone returns a deep copy.
func (t Table) clone() Table {
	out := t
	out.Owners = append([]string(nil), t.Owners...)
	return out
}

// Members returns the sorted distinct owner set.
func (t Table) Members() []string {
	seen := map[string]bool{}
	for _, o := range t.Owners {
		if o != "" {
			seen[o] = true
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// assign computes the full rendezvous assignment for a member set.
func assign(members []string, slots int) []string {
	owners := make([]string, slots)
	for s := range owners {
		owners[s] = bestOwner(members, s)
	}
	return owners
}

// Move is one pending slot transfer.
type Move struct {
	Slot int
	From string
	To   string
}

// movesTo diffs the current owners against a target assignment.
func movesTo(cur, target []string) []Move {
	var out []Move
	for s := range cur {
		if cur[s] != target[s] {
			out = append(out, Move{Slot: s, From: cur[s], To: target[s]})
		}
	}
	return out
}
