package sql

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name    string
	Type    value.Kind
	NotNull bool
}

// CreateTable is CREATE TABLE name (col type [NOT NULL], ...).
type CreateTable struct {
	Name string
	Cols []ColDef
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (col, ...).
type CreateIndex struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO table [(cols)] VALUES (exprs).
type Insert struct {
	Table string
	Cols  []string // nil means full schema order
	Vals  []Expr
}

// AggFunc identifies the aggregate in a single-aggregate SELECT.
type AggFunc int

// Aggregates supported in the select list.
const (
	AggNone AggFunc = iota
	AggCount
	AggMin
	AggMax
)

// Select is SELECT list FROM table [WHERE ...] [ORDER BY col [DESC]]
// [LIMIT n] [FOR UPDATE].
type Select struct {
	Table      string
	Star       bool
	Agg        AggFunc
	AggCol     string   // column for MIN/MAX
	Cols       []string // projection when not Star/Agg
	Where      []Pred
	OrderBy    string
	Desc       bool
	Limit      int // -1 = no limit (ignored when LimitParam >= 0)
	LimitParam int // parameter index supplying the limit; -1 = none
	ForUpdate  bool
}

// Update is UPDATE table SET col = expr, ... [WHERE ...].
type Update struct {
	Table string
	Sets  []Assign
	Where []Pred
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where []Pred
}

func (CreateTable) stmt() {}
func (CreateIndex) stmt() {}
func (DropTable) stmt()   {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (Update) stmt()      {}
func (Delete) stmt()      {}

// CmpOp is a comparison operator in a predicate.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Eval applies the operator to a three-way comparison result.
func (o CmpOp) Eval(cmp int) bool {
	switch o {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// Pred is one conjunct of a WHERE clause: column op expr.
type Pred struct {
	Col string
	Op  CmpOp
	Val Expr
}

// Assign is one SET clause in UPDATE.
type Assign struct {
	Col string
	Val Expr
}

// Expr is a scalar expression: a literal, a parameter marker, or a column
// reference.
type Expr interface {
	exprString() string
}

// Literal is a constant value.
type Literal struct{ V value.Value }

// Param is the i-th (0-based) ? parameter marker.
type Param struct{ Idx int }

// Column is a reference to a column of the statement's table.
type Column struct{ Name string }

func (l Literal) exprString() string { return l.V.SQLLiteral() }
func (p Param) exprString() string   { return fmt.Sprintf("?%d", p.Idx+1) }
func (c Column) exprString() string  { return c.Name }

// FormatPreds renders a predicate list for plan diagnostics.
func FormatPreds(preds []Pred) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.Col + " " + p.Op.String() + " " + p.Val.exprString()
	}
	return strings.Join(parts, " AND ")
}
