// Package sql implements the lexer, AST, and parser for the SQL subset the
// engine executes. DLFM accesses all of its metadata through this language,
// treating the engine as a black box exactly as the paper's DLFM treats its
// local DB2 (Section 1, Section 3.1).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam  // ?
	tokLParen // (
	tokRParen // )
	tokComma
	tokStar
	tokEq  // =
	tokNe  // <>
	tokLt  // <
	tokLe  // <=
	tokGt  // >
	tokGe  // >=
	tokDot // .
)

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "UNIQUE": true, "INDEX": true, "ON": true,
	"DROP": true, "INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"UPDATE": true, "SET": true, "DELETE": true, "FOR": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "VARCHAR": true,
	"BOOLEAN": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "MIN": true, "MAX": true,
}

type token struct {
	kind tokenKind
	text string // keyword text is uppercased; idents keep original case
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning a helpful error for invalid input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '(':
			l.emit(tokLParen, "(")
			l.pos++
		case c == ')':
			l.emit(tokRParen, ")")
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
			l.pos++
		case c == '*':
			l.emit(tokStar, "*")
			l.pos++
		case c == '?':
			l.emit(tokParam, "?")
			l.pos++
		case c == '.':
			l.emit(tokDot, ".")
			l.pos++
		case c == '=':
			l.emit(tokEq, "=")
			l.pos++
		case c == '<':
			if l.peek(1) == '=' {
				l.emit(tokLe, "<=")
				l.pos += 2
			} else if l.peek(1) == '>' {
				l.emit(tokNe, "<>")
				l.pos += 2
			} else {
				l.emit(tokLt, "<")
				l.pos++
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit(tokGe, ">=")
				l.pos += 2
			} else {
				l.emit(tokGt, ">")
				l.pos++
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' || unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '_' || unicode.IsLetter(rune(c)):
			l.lexWord()
		default:
			return nil, fmt.Errorf("sql: invalid character %q at position %d", c, l.pos)
		}
	}
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peek(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at position %d", start)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || !unicode.IsDigit(rune(l.src[l.pos])) {
			return fmt.Errorf("sql: bare '-' at position %d", start)
		}
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c) {
			l.pos++
		} else {
			break
		}
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
	}
}
