package sql

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE dlfm_file (
		name VARCHAR(256) NOT NULL,
		recid BIGINT,
		grpid INTEGER,
		linked BOOLEAN
	)`)
	ct, ok := stmt.(CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "dlfm_file" || len(ct.Cols) != 4 {
		t.Fatalf("parsed %+v", ct)
	}
	want := []ColDef{
		{Name: "name", Type: value.KindString, NotNull: true},
		{Name: "recid", Type: value.KindInt},
		{Name: "grpid", Type: value.KindInt},
		{Name: "linked", Type: value.KindBool},
	}
	for i, c := range want {
		if ct.Cols[i] != c {
			t.Errorf("col %d = %+v, want %+v", i, ct.Cols[i], c)
		}
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt := mustParse(t, "CREATE UNIQUE INDEX fx1 ON dlfm_file (name, chkflag)")
	ci := stmt.(CreateIndex)
	if !ci.Unique || ci.Name != "fx1" || ci.Table != "dlfm_file" ||
		len(ci.Cols) != 2 || ci.Cols[0] != "name" || ci.Cols[1] != "chkflag" {
		t.Fatalf("parsed %+v", ci)
	}
	ci2 := mustParse(t, "CREATE INDEX ix ON t (a)").(CreateIndex)
	if ci2.Unique {
		t.Error("non-unique index parsed as unique")
	}
}

func TestParseDropTable(t *testing.T) {
	dt := mustParse(t, "DROP TABLE old_stuff").(DropTable)
	if dt.Name != "old_stuff" {
		t.Fatalf("parsed %+v", dt)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO f (name, recid, ok) VALUES (?, 42, TRUE)").(Insert)
	if ins.Table != "f" || len(ins.Cols) != 3 || len(ins.Vals) != 3 {
		t.Fatalf("parsed %+v", ins)
	}
	if p, ok := ins.Vals[0].(Param); !ok || p.Idx != 0 {
		t.Errorf("val 0 = %#v, want Param{0}", ins.Vals[0])
	}
	if l, ok := ins.Vals[1].(Literal); !ok || l.V.Int64() != 42 {
		t.Errorf("val 1 = %#v", ins.Vals[1])
	}
	if l, ok := ins.Vals[2].(Literal); !ok || !l.V.IsTrue() {
		t.Errorf("val 2 = %#v", ins.Vals[2])
	}
	// Without a column list.
	ins2 := mustParse(t, "INSERT INTO f VALUES ('a', NULL)").(Insert)
	if ins2.Cols != nil || len(ins2.Vals) != 2 {
		t.Fatalf("parsed %+v", ins2)
	}
	if l := ins2.Vals[1].(Literal); !l.V.IsNull() {
		t.Error("NULL literal lost")
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM f WHERE name = ? AND chkflag = 0").(Select)
	if !sel.Star || sel.Table != "f" || len(sel.Where) != 2 {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.Where[0].Col != "name" || sel.Where[0].Op != OpEq {
		t.Errorf("pred 0 = %+v", sel.Where[0])
	}
	if sel.Where[1].Val.(Literal).V.Int64() != 0 {
		t.Errorf("pred 1 = %+v", sel.Where[1])
	}
	if sel.Limit != -1 || sel.ForUpdate {
		t.Errorf("defaults wrong: %+v", sel)
	}
}

func TestParseSelectProjectionOrderLimit(t *testing.T) {
	sel := mustParse(t, "SELECT name, recid FROM f WHERE recid >= 100 ORDER BY recid DESC LIMIT 10 FOR UPDATE").(Select)
	if len(sel.Cols) != 2 || sel.Cols[1] != "recid" {
		t.Fatalf("cols = %v", sel.Cols)
	}
	if sel.OrderBy != "recid" || !sel.Desc || sel.Limit != 10 || !sel.ForUpdate {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.Where[0].Op != OpGe {
		t.Errorf("op = %v", sel.Where[0].Op)
	}
	asc := mustParse(t, "SELECT a FROM t ORDER BY a ASC").(Select)
	if asc.Desc {
		t.Error("ASC parsed as DESC")
	}
}

func TestParseAggregates(t *testing.T) {
	c := mustParse(t, "SELECT COUNT(*) FROM f WHERE grpid = ?").(Select)
	if c.Agg != AggCount {
		t.Fatalf("parsed %+v", c)
	}
	mn := mustParse(t, "SELECT MIN(recid) FROM f").(Select)
	if mn.Agg != AggMin || mn.AggCol != "recid" {
		t.Fatalf("parsed %+v", mn)
	}
	mx := mustParse(t, "SELECT MAX(backupid) FROM b").(Select)
	if mx.Agg != AggMax || mx.AggCol != "backupid" {
		t.Fatalf("parsed %+v", mx)
	}
}

func TestParseUpdate(t *testing.T) {
	up := mustParse(t, "UPDATE f SET state = 'U', utxn = ?, chkflag = recid WHERE name = ? AND state = 'L'").(Update)
	if up.Table != "f" || len(up.Sets) != 3 || len(up.Where) != 2 {
		t.Fatalf("parsed %+v", up)
	}
	if up.Sets[0].Col != "state" || up.Sets[0].Val.(Literal).V.Text() != "U" {
		t.Errorf("set 0 = %+v", up.Sets[0])
	}
	if _, ok := up.Sets[2].Val.(Column); !ok {
		t.Errorf("set 2 should reference column recid: %#v", up.Sets[2].Val)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM f WHERE del_txn = ?").(Delete)
	if del.Table != "f" || len(del.Where) != 1 {
		t.Fatalf("parsed %+v", del)
	}
	all := mustParse(t, "DELETE FROM f").(Delete)
	if all.Where != nil {
		t.Fatalf("parsed %+v", all)
	}
}

func TestParamNumbering(t *testing.T) {
	up := mustParse(t, "UPDATE f SET a = ?, b = ? WHERE c = ? AND d = ?").(Update)
	idx := []int{
		up.Sets[0].Val.(Param).Idx,
		up.Sets[1].Val.(Param).Idx,
		up.Where[0].Val.(Param).Idx,
		up.Where[1].Val.(Param).Idx,
	}
	for i, got := range idx {
		if got != i {
			t.Errorf("param %d numbered %d", i, got)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	ins := mustParse(t, "INSERT INTO f VALUES ('o''brien')").(Insert)
	if ins.Vals[0].(Literal).V.Text() != "o'brien" {
		t.Errorf("escaped quote lost: %v", ins.Vals[0])
	}
}

func TestNegativeNumbers(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM f WHERE x = -5").(Select)
	if sel.Where[0].Val.(Literal).V.Int64() != -5 {
		t.Error("negative literal misparsed")
	}
}

func TestCaseInsensitiveKeywordsLowercaseIdents(t *testing.T) {
	sel := mustParse(t, "select * from MyTable where NAME = 'x'").(Select)
	if sel.Table != "mytable" || sel.Where[0].Col != "name" {
		t.Fatalf("parsed %+v", sel)
	}
}

func TestCompareOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmps map[int]bool
	}{
		{OpEq, map[int]bool{-1: false, 0: true, 1: false}},
		{OpNe, map[int]bool{-1: true, 0: false, 1: true}},
		{OpLt, map[int]bool{-1: true, 0: false, 1: false}},
		{OpLe, map[int]bool{-1: true, 0: true, 1: false}},
		{OpGt, map[int]bool{-1: false, 0: false, 1: true}},
		{OpGe, map[int]bool{-1: false, 0: true, 1: true}},
	}
	for _, c := range cases {
		for cmp, want := range c.cmps {
			if got := c.op.Eval(cmp); got != want {
				t.Errorf("%s.Eval(%d) = %v, want %v", c.op, cmp, got, want)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"BOGUS",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a",
		"SELECT * FROM t WHERE a !! 3",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t extra junk",
		"CREATE TABLE t",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a FLOAT)",
		"CREATE VIEW v",
		"CREATE INDEX i ON t",
		"INSERT INTO t",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"UPDATE t",
		"UPDATE t SET",
		"UPDATE t SET a",
		"DELETE t",
		"DROP t",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a = -",
		"SELECT * FROM t WHERE a = @",
		"SELECT COUNT(x) FROM t",
		"SELECT * FROM t FOR SHARE",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE a = @")
	if err == nil || !strings.Contains(err.Error(), "position") {
		t.Errorf("error should carry position info: %v", err)
	}
}

func TestFormatPreds(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM f WHERE name = 'a' AND recid > ?").(Select)
	got := FormatPreds(sel.Where)
	if got != "name = 'a' AND recid > ?1" {
		t.Errorf("FormatPreds = %q", got)
	}
}
