package sql

import (
	"fmt"
	"strconv"

	"repro/internal/value"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

type parser struct {
	src    string
	toks   []token
	pos    int
	params int
}

func (p *parser) cur() token          { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atKw(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s", what, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at position %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "identifier")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKw("CREATE"):
		return p.create()
	case p.atKw("DROP"):
		return p.dropTable()
	case p.atKw("INSERT"):
		return p.insert()
	case p.atKw("SELECT"):
		return p.selectStmt()
	case p.atKw("UPDATE"):
		return p.update()
	case p.atKw("DELETE"):
		return p.deleteStmt()
	default:
		return nil, p.errf("expected a statement, found %s", p.cur())
	}
}

func (p *parser) create() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKw("TABLE"):
		return p.createTable()
	case p.atKw("UNIQUE") || p.atKw("INDEX"):
		unique := p.acceptKw("UNIQUE")
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.createIndex(unique)
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE, found %s", p.cur())
	}
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var cols []ColDef
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := p.colType()
		if err != nil {
			return nil, err
		}
		def := ColDef{Name: col, Type: kind}
		if p.acceptKw("NOT") {
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			def.NotNull = true
		}
		cols = append(cols, def)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return CreateTable{Name: name, Cols: cols}, nil
}

func (p *parser) colType() (value.Kind, error) {
	switch {
	case p.acceptKw("INTEGER"), p.acceptKw("INT"), p.acceptKw("BIGINT"):
		return value.KindInt, nil
	case p.acceptKw("VARCHAR"):
		// Optional length, accepted and ignored (lengths are advisory).
		if p.at(tokLParen) {
			p.advance()
			if _, err := p.expect(tokNumber, "length"); err != nil {
				return 0, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return 0, err
			}
		}
		return value.KindString, nil
	case p.acceptKw("BOOLEAN"):
		return value.KindBool, nil
	default:
		return 0, p.errf("expected a column type, found %s", p.cur())
	}
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	return CreateIndex{Name: name, Table: table, Cols: cols, Unique: unique}, nil
}

func (p *parser) parenIdentList() ([]string, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return DropTable{Name: name}, nil
}

func (p *parser) insert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.at(tokLParen) {
		cols, err = p.parenIdentList()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var vals []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, e)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return Insert{Table: table, Cols: cols, Vals: vals}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.advance() // SELECT
	sel := Select{Limit: -1, LimitParam: -1}
	switch {
	case p.at(tokStar):
		p.advance()
		sel.Star = true
	case p.atKw("COUNT"):
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokStar, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		sel.Agg = AggCount
	case p.atKw("MIN"), p.atKw("MAX"):
		if p.atKw("MIN") {
			sel.Agg = AggMin
		} else {
			sel.Agg = AggMax
		}
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.AggCol = col
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Cols = append(sel.Cols, col)
			if p.at(tokComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if sel.Where, err = p.whereOpt(); err != nil {
		return nil, err
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if sel.OrderBy, err = p.ident(); err != nil {
			return nil, err
		}
		if p.acceptKw("DESC") {
			sel.Desc = true
		} else {
			p.acceptKw("ASC")
		}
	}
	if p.acceptKw("LIMIT") {
		if p.at(tokParam) {
			p.advance()
			sel.LimitParam = p.params
			p.params++
		} else {
			t, err := p.expect(tokNumber, "limit count")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return nil, p.errf("invalid LIMIT %q", t.text)
			}
			sel.Limit = n
		}
	}
	if p.acceptKw("FOR") {
		if err := p.expectKw("UPDATE"); err != nil {
			return nil, err
		}
		sel.ForUpdate = true
	}
	return sel, nil
}

func (p *parser) update() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	var sets []Assign
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, Assign{Col: col, Val: e})
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	where, err := p.whereOpt()
	if err != nil {
		return nil, err
	}
	return Update{Table: table, Sets: sets, Where: where}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.whereOpt()
	if err != nil {
		return nil, err
	}
	return Delete{Table: table, Where: where}, nil
}

func (p *parser) whereOpt() ([]Pred, error) {
	if !p.acceptKw("WHERE") {
		return nil, nil
	}
	var preds []Pred
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		var op CmpOp
		switch p.cur().kind {
		case tokEq:
			op = OpEq
		case tokNe:
			op = OpNe
		case tokLt:
			op = OpLt
		case tokLe:
			op = OpLe
		case tokGt:
			op = OpGt
		case tokGe:
			op = OpGe
		default:
			return nil, p.errf("expected comparison operator, found %s", p.cur())
		}
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		preds = append(preds, Pred{Col: col, Op: op, Val: e})
		if p.acceptKw("AND") {
			continue
		}
		break
	}
	return preds, nil
}

func (p *parser) expr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return Literal{V: value.Int(n)}, nil
	case tokString:
		p.advance()
		return Literal{V: value.Str(t.text)}, nil
	case tokParam:
		p.advance()
		e := Param{Idx: p.params}
		p.params++
		return e, nil
	case tokIdent:
		p.advance()
		return Column{Name: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return Literal{V: value.Null}, nil
		case "TRUE":
			p.advance()
			return Literal{V: value.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return Literal{V: value.Bool(false)}, nil
		}
	}
	return nil, p.errf("expected an expression, found %s", t)
}
