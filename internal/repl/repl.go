// Package repl adds log-shipping replication to the DLFM: a hot standby
// pulls write-ahead-log records from its primary over the rpc transport
// (ReplFetch), continuously redo-applies whole transactions into its own
// engine through the crash-recovery apply path, and can be promoted to
// primary when the original dies.
//
// The paper's DLFM (Section: backup and recovery) recovers only by
// restarting against its local database and archive, leaving the 2PC
// coordinator blocked for the whole restore window. The standby closes
// that window: its database trails the primary by the replication lag,
// and Promote drains the remaining stream — the stand-in for reading the
// primary's durable log device — so no transaction the primary hardened
// is lost.
package repl

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wal"
)

// Fault points in the standby's apply and promote windows (the ship window
// lives on the primary, repl.ship). An error arming skips that unit of
// work and retries; a delay widens the lag deterministically.
var (
	fpApply   = fault.P("repl.apply")
	fpPromote = fault.P("repl.promote")
)

// Config tunes one standby's replication client.
type Config struct {
	// PollInterval is the fetch polling period; zero defaults to 2 ms.
	PollInterval time.Duration
	// BatchMax caps records per fetch; zero lets the primary choose.
	BatchMax int
	// DrainAttempts bounds how many consecutive failing fetches Promote
	// tolerates before giving up on the stream and promoting with what
	// has been applied. Zero defaults to 10.
	DrainAttempts int
}

// Standby couples a fenced core.Server with a replication client that
// keeps it current against the primary's log.
type Standby struct {
	srv  *core.Server
	dial func() (io.ReadWriteCloser, error)
	cfg  Config

	applyLSN atomic.Int64 // highest primary LSN applied
	shipLSN  atomic.Int64 // primary's last LSN at the most recent fetch

	batches  obs.Counter
	records  obs.Counter
	txns     obs.Counter
	promoted atomic.Bool

	mu     sync.Mutex // serializes apply and promote
	client *rpc.Client
	// ap holds the transaction-reassembly state (range.go), shared with
	// the bounded-range apply path the cluster mover uses.
	ap *applier

	quit chan struct{}
	done chan struct{}
	stop sync.Once
}

// New builds a standby around srv (which must have been opened with
// core.NewStandby) fetching the primary's log through dial. Call Start to
// begin streaming.
func New(srv *core.Server, dial func() (io.ReadWriteCloser, error), cfg Config) *Standby {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.DrainAttempts <= 0 {
		cfg.DrainAttempts = 10
	}
	s := &Standby{
		srv:  srv,
		dial: dial,
		cfg:  cfg,
		ap:   newApplier(srv.Tracer()),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.ap.txns = &s.txns
	reg := srv.Obs()
	reg.RegisterCounter("repl_batches_total", &s.batches)
	reg.RegisterCounter("repl_records_total", &s.records)
	reg.RegisterCounter("repl_txns_applied_total", &s.txns)
	reg.GaugeFunc("repl_apply_lsn", func() float64 { return float64(s.applyLSN.Load()) })
	reg.GaugeFunc("repl_ship_lsn", func() float64 { return float64(s.shipLSN.Load()) })
	reg.GaugeFunc("repl_lag_records", func() float64 { return float64(s.Lag()) })
	return s
}

// Server returns the standby's DLFM instance (fenced until Promote).
func (s *Standby) Server() *core.Server { return s.srv }

// ApplyLSN returns the highest primary LSN applied so far.
func (s *Standby) ApplyLSN() int64 { return s.applyLSN.Load() }

// Lag returns how many primary log records the standby has yet to apply.
func (s *Standby) Lag() int64 {
	lag := s.shipLSN.Load() - s.applyLSN.Load()
	if lag < 0 {
		return 0
	}
	return lag
}

// Promoted reports whether Promote has completed.
func (s *Standby) Promoted() bool { return s.promoted.Load() }

// Start launches the fetch-and-apply loop.
func (s *Standby) Start() {
	go s.run()
}

// Stop halts the fetch loop without promoting.
func (s *Standby) Stop() {
	s.stop.Do(func() { close(s.quit) })
	<-s.done
}

func (s *Standby) run() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			if _, err := s.fetchOnce(); err != nil {
				// Transport or apply failure: keep polling. The client
				// redials on the next call; a dead primary shows up as
				// growing lag, which failover resolves with Promote.
				s.srv.Tracer().Emitf(0, "repl", "fetch_error", "%v", err)
			}
		}
	}
}

// fetchOnce pulls one batch and applies it, returning the record count.
func (s *Standby) fetchOnce() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchLocked()
}

func (s *Standby) fetchLocked() (int, error) {
	if s.client == nil {
		conn, err := s.dial()
		if err != nil {
			return 0, err
		}
		s.client = rpc.NewClient(conn)
	}
	resp, err := s.client.Call(rpc.ReplFetchReq{FromLSN: s.applyLSN.Load() + 1, Max: s.cfg.BatchMax})
	if err != nil {
		// Drop the client so the next attempt redials through the dialer
		// (the endpoint may have moved).
		s.client.Close()
		s.client = nil
		return 0, err
	}
	if !resp.OK() {
		return 0, fmt.Errorf("repl: fetch refused: %s: %s", resp.Code, resp.Msg)
	}
	recs, err := wal.DecodeRecords(resp.Data)
	if err != nil {
		return 0, err
	}
	s.shipLSN.Store(resp.LSN - 1)
	if len(recs) == 0 {
		return 0, nil
	}
	s.batches.Add(1)
	if err := s.applyLocked(recs); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// applyLocked feeds a batch through the shared applier (range.go): data
// records buffer per transaction; commit/abort/prepare apply the buffered
// transaction through the engine's recovery-path primitives; DDL applies
// immediately (it is autocommitted on the primary).
func (s *Standby) applyLocked(recs []wal.Record) error {
	db := s.srv.DB()
	for _, r := range recs {
		if r.LSN <= s.applyLSN.Load() {
			continue // idempotent re-fetch overlap
		}
		if err := fpApply.FireDetail(r.Type.String()); err != nil {
			return err
		}
		if err := s.ap.apply(db, r); err != nil {
			return fmt.Errorf("repl: apply LSN %d (%s txn %d): %w", r.LSN, r.Type, r.Txn, err)
		}
		s.applyLSN.Store(r.LSN)
		s.records.Add(1)
	}
	return nil
}

// Promote turns the standby into a primary: the fetch loop stops, the
// remaining stream is drained (best effort — a handful of consecutive
// fetch failures means the log source is gone too, and the standby
// promotes with everything it has), and the DLFM unfences, binds its SQL,
// and starts its daemons. Transactions the stream left prepared surface
// through ListIndoubt for the host's resolution daemon.
func (s *Standby) Promote() error {
	if err := fpPromote.Fire(); err != nil {
		return err
	}
	s.stop.Do(func() { close(s.quit) })
	<-s.done

	s.mu.Lock()
	failures := 0
	for failures < s.cfg.DrainAttempts {
		n, err := s.fetchLocked()
		if err != nil {
			failures++
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if n == 0 && s.Lag() == 0 {
			break
		}
		failures = 0
	}
	drained := s.Lag() == 0
	if s.client != nil {
		s.client.Close()
		s.client = nil
	}
	s.mu.Unlock()

	if err := s.srv.Promote(); err != nil {
		return err
	}
	s.promoted.Store(true)
	s.srv.Tracer().Emitf(0, "repl", "promote_done", "%s applyLSN=%d drained=%v",
		s.srv.Name(), s.applyLSN.Load(), drained)
	return nil
}
