package repl

import (
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/rpc"
)

// TestFetchApplyRangeStopsAtCutover is the cluster mover's reuse contract:
// ship a bounded LSN range off a primary's LogFeed into a fresh standby and
// prove redo-apply stops cleanly at the cutover LSN — transactions committed
// before the cutover are linked on the target, transactions after it are
// not, even though their records were fetched.
func TestFetchApplyRangeStopsAtCutover(t *testing.T) {
	p := newPair(t, Config{PollInterval: time.Hour}, true)

	// Group + three committed links, with a cutover point after the second.
	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CreateGroupReq{Txn: 1, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: 1}))
	p.linkCommitted(2, "before1.txt", 1)
	p.linkCommitted(3, "before2.txt", 1)

	feed, err := rpc.NewClientDialer(dialTo(&LogFeed{DB: p.primary.DB()}))
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()
	cutover, err := NextLSN(feed)
	if err != nil {
		t.Fatal(err)
	}
	if cutover <= 0 {
		t.Fatalf("cutover LSN = %d", cutover)
	}

	// Post-cutover work the new owner must NOT see.
	p.linkCommitted(4, "after.txt", 1)

	// Fetch deliberately past the cutover (the mover fetches to MaxInt64 and
	// lets ApplyRange cut), in small batches to exercise pagination.
	recs, _, err := FetchRange(feed, 0, cutover+1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("fetched no records")
	}
	sawAfter := false
	for i, r := range recs {
		if i > 0 && r.LSN <= recs[i-1].LSN {
			t.Fatalf("records out of order: LSN %d after %d", r.LSN, recs[i-1].LSN)
		}
		if r.LSN >= cutover {
			sawAfter = true
		}
	}
	if !sawAfter {
		t.Fatal("fetch never crossed the cutover — test proves nothing")
	}

	// Redo-apply into a brand-new standby over the same file server.
	sbCfg := core.DefaultConfig("fs1")
	sbCfg.GCInterval = time.Hour
	sbCfg.CopyInterval = time.Hour
	target, err := core.NewStandby(sbCfg, p.fs, archive.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	last, err := ApplyRange(target, recs, cutover)
	if err != nil {
		t.Fatal(err)
	}
	if last >= cutover {
		t.Fatalf("ApplyRange reported LSN %d >= cutover %d", last, cutover)
	}

	tc := rpc.LocalPair(target)
	for _, want := range []struct {
		name   string
		linked bool
	}{
		{"before1.txt", true},
		{"before2.txt", true},
		{"after.txt", false},
	} {
		resp := p.must(tc.Call(rpc.IsLinkedReq{Name: want.name}))
		if resp.Linked != want.linked {
			t.Errorf("%s: linked=%v on target, want %v", want.name, resp.Linked, want.linked)
		}
	}
}

// TestNextLSNProbeIsPassive checks the probe neither transfers records nor
// moves: two probes in a row agree when the log is quiet, and grow after
// new commits.
func TestNextLSNProbeIsPassive(t *testing.T) {
	p := newPair(t, Config{PollInterval: time.Hour}, true)
	feed, err := rpc.NewClientDialer(dialTo(&LogFeed{DB: p.primary.DB()}))
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	a, err := NextLSN(feed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NextLSN(feed)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("probe moved the LSN: %d then %d", a, b)
	}

	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CreateGroupReq{Txn: 1, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: 1}))

	c, err := NextLSN(feed)
	if err != nil {
		t.Fatal(err)
	}
	if c <= a {
		t.Fatalf("LSN did not grow past %d after commits: %d", a, c)
	}
}
