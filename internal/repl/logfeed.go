package repl

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/rpc"
	"repro/internal/wal"
)

// fpLogFeed fires on the log device before a fetch is served, sharing the
// primary-side ship window with core's agent path.
var fpLogFeed = fault.P("repl.ship")

// logFeedDefaultMax bounds one batch when the client does not.
const logFeedDefaultMax = 512

// LogFeed serves ReplFetch directly from a database's write-ahead log. It
// is the stand-in for the paper's shared durable log device: deployments
// wire the standby's dial to a LogFeed endpoint that outlives the primary
// process, so Promote's drain can still read records the primary hardened
// right before dying. Only ReplFetch and Ping are served — the feed is a
// log reader, not a DLFM.
type LogFeed struct {
	DB *engine.DB
}

// NewAgent implements rpc.AgentFactory. The feed is stateless, so every
// connection shares the one instance.
func (f *LogFeed) NewAgent() rpc.Agent { return logFeedAgent{f.DB} }

type logFeedAgent struct {
	db *engine.DB
}

func (a logFeedAgent) Handle(req any) rpc.Response {
	switch r := req.(type) {
	case rpc.PingReq:
		return rpc.Response{}
	case rpc.ReplFetchReq:
		if err := fpLogFeed.Fire(); err != nil {
			return rpc.Response{Code: "error", Msg: err.Error()}
		}
		max := r.Max
		if max <= 0 {
			max = logFeedDefaultMax
		}
		recs, err := a.db.WAL().ReadFrom(r.FromLSN)
		if err != nil {
			return rpc.Response{Code: "error", Msg: err.Error()}
		}
		if len(recs) > max {
			recs = recs[:max]
		}
		return rpc.Response{Data: wal.EncodeRecords(recs), LSN: a.db.WAL().NextLSN(), N: int64(len(recs))}
	default:
		return rpc.Response{Code: "error", Msg: fmt.Sprintf("logfeed: %s not served", rpc.Name(req))}
	}
}

func (a logFeedAgent) Close() {}
