package repl

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/rpc"
)

// dialTo returns a dial function that serves each connection from a fresh
// agent of the factory — the in-process equivalent of a TCP endpoint.
func dialTo(f rpc.AgentFactory) func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) {
		clientSide, serverSide := net.Pipe()
		go rpc.ServeConn(serverSide, f.NewAgent())
		return clientSide, nil
	}
}

// pair builds a primary DLFM and a standby replicating from it through the
// given dial target (the primary's agent endpoint, or a LogFeed).
type pair struct {
	t       *testing.T
	fs      *fsim.Server
	primary *core.Server
	pc      *rpc.Client // client into the primary
	sbSrv   *core.Server
	sb      *Standby
}

func newPair(t *testing.T, cfg Config, feed bool) *pair {
	t.Helper()
	fs := fsim.NewServer("fs1")
	arch := archive.NewServer()

	pCfg := core.DefaultConfig("fs1")
	pCfg.GCInterval = time.Hour
	pCfg.CopyInterval = time.Hour
	primary, err := core.New(pCfg, fs, arch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })

	sbCfg := core.DefaultConfig("fs1")
	sbCfg.GCInterval = time.Hour
	sbCfg.CopyInterval = time.Hour
	sbSrv, err := core.NewStandby(sbCfg, fs, arch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sbSrv.Close() })

	var dial func() (io.ReadWriteCloser, error)
	if feed {
		dial = dialTo(&LogFeed{DB: primary.DB()})
	} else {
		dial = dialTo(primary)
	}
	sb := New(sbSrv, dial, cfg)
	return &pair{t: t, fs: fs, primary: primary, pc: rpc.LocalPair(primary), sbSrv: sbSrv, sb: sb}
}

func (p *pair) must(resp rpc.Response, err error) rpc.Response {
	p.t.Helper()
	if err != nil {
		p.t.Fatal(err)
	}
	if !resp.OK() {
		p.t.Fatalf("request failed: %s: %s", resp.Code, resp.Msg)
	}
	return resp
}

// linkCommitted creates the file and links it in its own 2PC transaction.
func (p *pair) linkCommitted(txn int64, name string, grp int64) {
	p.t.Helper()
	if err := p.fs.Create(name, "alice", []byte(name)); err != nil {
		p.t.Fatal(err)
	}
	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: txn}))
	p.must(p.pc.Call(rpc.LinkFileReq{Txn: txn, Name: name, RecID: txn * 100, Grp: grp}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: txn}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: txn}))
}

// catchUp waits until the standby has applied everything the primary's log
// currently holds.
func (p *pair) catchUp() {
	p.t.Helper()
	target := p.primary.DB().WAL().NextLSN() - 1
	deadline := time.Now().Add(5 * time.Second)
	for p.sb.ApplyLSN() < target {
		if time.Now().After(deadline) {
			p.t.Fatalf("standby stuck: applyLSN %d, want %d", p.sb.ApplyLSN(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStandbyStreamsAndFences drives committed work through the primary and
// checks the standby applies it, answers reads, and refuses writes.
func TestStandbyStreamsAndFences(t *testing.T) {
	p := newPair(t, Config{PollInterval: time.Millisecond}, false)
	p.sb.Start()
	defer p.sb.Stop()

	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CreateGroupReq{Txn: 1, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: 1}))
	p.linkCommitted(2, "a.txt", 1)
	p.catchUp()

	if !p.sbSrv.IsStandby() {
		t.Fatal("standby server reports primary mode")
	}
	sc := rpc.LocalPair(p.sbSrv)
	resp := p.must(sc.Call(rpc.IsLinkedReq{Name: "a.txt"}))
	if !resp.Linked {
		t.Fatal("standby does not see the replicated link")
	}
	resp, err := sc.Call(rpc.BeginTxnReq{Txn: 99})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != "standby" {
		t.Fatalf("standby accepted a write: code %q msg %q", resp.Code, resp.Msg)
	}
	if got := p.primary.Stats().ReplFetches; got == 0 {
		t.Fatal("primary served no replication fetches")
	}
	if lag := p.sb.Lag(); lag != 0 {
		t.Fatalf("lag = %d after catch-up", lag)
	}
}

// TestStandbyRidesOutFaultWindows arms the ship and apply fault points and
// checks the fetch loop retries through both: injected failures cost only
// latency, never records.
func TestStandbyRidesOutFaultWindows(t *testing.T) {
	fault.Default().Arm("repl.ship", fault.Action{}, fault.Times(2))
	fault.Default().Arm("repl.apply", fault.Action{}, fault.Times(2))
	defer fault.Default().Disarm("repl.ship")
	defer fault.Default().Disarm("repl.apply")

	p := newPair(t, Config{PollInterval: time.Millisecond}, false)
	p.sb.Start()
	defer p.sb.Stop()

	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CreateGroupReq{Txn: 1, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: 1}))
	p.linkCommitted(2, "f.txt", 1)
	p.catchUp()

	sc := rpc.LocalPair(p.sbSrv)
	resp := p.must(sc.Call(rpc.IsLinkedReq{Name: "f.txt"}))
	if !resp.Linked {
		t.Fatal("link lost across the fault windows")
	}
	if lag := p.sb.Lag(); lag != 0 {
		t.Fatalf("lag = %d after convergence", lag)
	}
}

// TestPromoteExposesIndoubt prepares a transaction on the primary without
// resolving it, promotes the standby, and checks the transaction surfaces
// through ListIndoubt and commits cleanly — the failover resolution path.
func TestPromoteExposesIndoubt(t *testing.T) {
	p := newPair(t, Config{PollInterval: time.Millisecond}, false)
	p.sb.Start()

	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CreateGroupReq{Txn: 1, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: 1}))

	// Prepared but never resolved: the standby must re-materialize it as
	// indoubt after promotion.
	if err := p.fs.Create("b.txt", "alice", []byte("b")); err != nil {
		t.Fatal(err)
	}
	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 7}))
	p.must(p.pc.Call(rpc.LinkFileReq{Txn: 7, Name: "b.txt", RecID: 700, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 7}))

	p.catchUp()
	if err := p.sb.Promote(); err != nil {
		t.Fatal(err)
	}
	if p.sbSrv.IsStandby() || !p.sb.Promoted() {
		t.Fatal("promotion did not flip the server to primary")
	}

	sc := rpc.LocalPair(p.sbSrv)
	resp := p.must(sc.Call(rpc.ListIndoubtReq{}))
	found := false
	for _, txn := range resp.Txns {
		if txn == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("promoted standby lists indoubts %v, want txn 7", resp.Txns)
	}
	p.must(sc.Call(rpc.CommitReq{Txn: 7}))
	resp = p.must(sc.Call(rpc.IsLinkedReq{Name: "b.txt"}))
	if !resp.Linked {
		t.Fatal("committed indoubt link not visible after promotion")
	}

	// The promoted server now takes writes end to end.
	if err := p.fs.Create("c.txt", "alice", []byte("c")); err != nil {
		t.Fatal(err)
	}
	p.must(sc.Call(rpc.BeginTxnReq{Txn: 8}))
	p.must(sc.Call(rpc.LinkFileReq{Txn: 8, Name: "c.txt", RecID: 800, Grp: 1}))
	p.must(sc.Call(rpc.PrepareReq{Txn: 8}))
	p.must(sc.Call(rpc.CommitReq{Txn: 8}))
	resp = p.must(sc.Call(rpc.IsLinkedReq{Name: "c.txt"}))
	if !resp.Linked {
		t.Fatal("post-promotion write not visible")
	}
}

// TestPromoteDrainsFromLogFeed leaves the standby idle (no background
// polling) while the primary commits work, then promotes through a LogFeed
// — the shared-log-device drain must pull every record it never streamed.
func TestPromoteDrainsFromLogFeed(t *testing.T) {
	p := newPair(t, Config{PollInterval: time.Hour}, true)
	p.sb.Start()

	p.must(p.pc.Call(rpc.BeginTxnReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CreateGroupReq{Txn: 1, Grp: 1}))
	p.must(p.pc.Call(rpc.PrepareReq{Txn: 1}))
	p.must(p.pc.Call(rpc.CommitReq{Txn: 1}))
	p.linkCommitted(2, "d.txt", 1)
	p.linkCommitted(3, "e.txt", 1)

	if got := p.sb.ApplyLSN(); got != 0 {
		t.Fatalf("standby applied %d records before promote; want an idle standby", got)
	}
	if err := p.sb.Promote(); err != nil {
		t.Fatal(err)
	}
	sc := rpc.LocalPair(p.sbSrv)
	for _, name := range []string{"d.txt", "e.txt"} {
		resp := p.must(sc.Call(rpc.IsLinkedReq{Name: name}))
		if !resp.Linked {
			t.Fatalf("%s lost across the drain", name)
		}
	}
	if lag := p.sb.Lag(); lag != 0 {
		t.Fatalf("lag = %d after drain", lag)
	}
}
