package repl

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wal"
)

// Bounded-range log shipping: the cluster mover reuses the LogFeed protocol
// to watch a source member's WAL from a snapshot LSN (drain detection
// during a fenced cutover), and tests ship an explicit [from, cutover)
// range into a fresh standby to prove redo-apply stops cleanly at the
// cutover LSN.

// NextLSN asks a LogFeed endpoint for its current end-of-log LSN without
// transferring any records.
func NextLSN(client *rpc.Client) (int64, error) {
	resp, err := client.Call(rpc.ReplFetchReq{FromLSN: math.MaxInt64, Max: 1})
	if err != nil {
		return 0, err
	}
	if !resp.OK() {
		return 0, fmt.Errorf("repl: next-LSN probe refused: %s: %s", resp.Code, resp.Msg)
	}
	return resp.LSN, nil
}

// FetchRange pulls every WAL record with from <= LSN < to from a LogFeed
// endpoint, batching by batchMax (0 = server default). It stops early at
// the feed's current end of log; the second return is the feed's next LSN
// at the final fetch, so callers can tell how far the log had grown.
func FetchRange(client *rpc.Client, from, to int64, batchMax int) ([]wal.Record, int64, error) {
	var out []wal.Record
	cur := from
	for cur < to {
		resp, err := client.Call(rpc.ReplFetchReq{FromLSN: cur, Max: batchMax})
		if err != nil {
			return out, 0, err
		}
		if !resp.OK() {
			return out, 0, fmt.Errorf("repl: range fetch refused: %s: %s", resp.Code, resp.Msg)
		}
		recs, err := wal.DecodeRecords(resp.Data)
		if err != nil {
			return out, 0, err
		}
		if len(recs) == 0 {
			return out, resp.LSN, nil // caught up with the feed
		}
		for _, r := range recs {
			if r.LSN >= to {
				return out, resp.LSN, nil
			}
			out = append(out, r)
			cur = r.LSN + 1
		}
	}
	return out, cur, nil
}

// ApplyRange redo-applies records with LSN < cutover into srv (a fenced
// core.NewStandby instance) through the same transaction-reassembly rules
// the streaming standby uses. Transactions still incomplete at the cutover
// — data records without their commit, abort, or prepare — are dropped,
// not half-applied. Returns the highest LSN applied.
func ApplyRange(srv *core.Server, recs []wal.Record, cutover int64) (int64, error) {
	ap := newApplier(srv.Tracer())
	db := srv.DB()
	var last int64
	for _, r := range recs {
		if r.LSN >= cutover {
			break
		}
		if err := ap.apply(db, r); err != nil {
			return last, fmt.Errorf("repl: apply LSN %d (%s txn %d): %w", r.LSN, r.Type, r.Txn, err)
		}
		last = r.LSN
	}
	return last, nil
}

// applier holds the transaction-reassembly state shared by the streaming
// standby and the bounded-range apply: data records buffer per transaction
// until their commit/abort/prepare decides them.
type applier struct {
	tracer  *obs.Tracer
	pending map[int64][]wal.Record
	indoubt map[int64]bool
	txns    *obs.Counter // optional applied-transaction counter
}

func newApplier(tracer *obs.Tracer) *applier {
	return &applier{
		tracer:  tracer,
		pending: make(map[int64][]wal.Record),
		indoubt: make(map[int64]bool),
	}
}

// apply feeds one record through the reassembly rules: data records buffer
// per transaction; commit/abort/prepare apply the buffered transaction
// through the engine's recovery-path primitives; DDL applies immediately
// (it is autocommitted on the primary).
func (ap *applier) apply(db *engine.DB, r wal.Record) error {
	switch r.Type {
	case wal.RecBegin, wal.RecCheckpoint:
		return nil
	case wal.RecCreateTable, wal.RecCreateIndex, wal.RecDropTable:
		return db.ApplyDDL(r)
	case wal.RecInsert, wal.RecDelete, wal.RecUpdate:
		ap.pending[r.Txn] = append(ap.pending[r.Txn], r)
		return nil
	case wal.RecPrepare:
		if err := db.ApplyPrepared(r.Txn, ap.pending[r.Txn]); err != nil {
			return err
		}
		delete(ap.pending, r.Txn)
		ap.indoubt[r.Txn] = true
		ap.countTxn()
		return nil
	case wal.RecCommit:
		// Redo-apply joins the originating transaction's trace (the WAL
		// record carries the primary engine's txn id), so apply work shows
		// up in the same span tree as the commit that shipped it.
		sp := ap.tracer.StartSpanInTrace(r.Txn, 0, "repl", "apply")
		if ap.indoubt[r.Txn] {
			delete(ap.indoubt, r.Txn)
			err := db.ResolveIndoubt(r.Txn, true)
			sp.Attr("kind", "indoubt_commit").End()
			return err
		}
		n := len(ap.pending[r.Txn])
		err := db.ApplyCommitted(r.Txn, ap.pending[r.Txn])
		if err == nil {
			delete(ap.pending, r.Txn)
			ap.countTxn()
			ap.tracer.Emitf(r.Txn, "repl", "apply", "commit, %d records", n)
		}
		sp.Attr("records", strconv.Itoa(n)).End()
		return err
	case wal.RecAbort:
		delete(ap.pending, r.Txn)
		if ap.indoubt[r.Txn] {
			delete(ap.indoubt, r.Txn)
			return db.ResolveIndoubt(r.Txn, false)
		}
		return nil
	default:
		return fmt.Errorf("repl: unknown record type %v", r.Type)
	}
}

func (ap *applier) countTxn() {
	if ap.txns != nil {
		ap.txns.Add(1)
	}
}
