package value

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of values and rows, used by the write-ahead log and the
// checkpoint snapshots. The format is self-describing and versionless:
// each value is a 1-byte kind tag followed by a kind-specific payload.

// AppendValue appends the binary encoding of v to buf and returns the
// extended slice.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool, KindInt:
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], uint64(v.i))
		buf = append(buf, tmp[:]...)
	case KindString:
		var tmp [4]byte
		binary.BigEndian.PutUint32(tmp[:], uint32(len(v.s)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, v.s...)
	}
	return buf
}

// DecodeValue decodes one value from buf, returning the value and the
// number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) < 1 {
		return Null, 0, fmt.Errorf("value: truncated value encoding")
	}
	kind := Kind(buf[0])
	switch kind {
	case KindNull:
		return Null, 1, nil
	case KindBool, KindInt:
		if len(buf) < 9 {
			return Null, 0, fmt.Errorf("value: truncated %s encoding", kind)
		}
		i := int64(binary.BigEndian.Uint64(buf[1:9]))
		return Value{kind: kind, i: i}, 9, nil
	case KindString:
		if len(buf) < 5 {
			return Null, 0, fmt.Errorf("value: truncated VARCHAR header")
		}
		n := int(binary.BigEndian.Uint32(buf[1:5]))
		if len(buf) < 5+n {
			return Null, 0, fmt.Errorf("value: truncated VARCHAR payload (want %d bytes)", n)
		}
		return Value{kind: KindString, s: string(buf[5 : 5+n])}, 5 + n, nil
	default:
		return Null, 0, fmt.Errorf("value: unknown kind tag %d", buf[0])
	}
}

// AppendRow appends the binary encoding of r (a 4-byte length prefix
// followed by each value) to buf.
func AppendRow(buf []byte, r Row) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(r)))
	buf = append(buf, tmp[:]...)
	for _, v := range r {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeRow decodes one row from buf, returning the row and the number of
// bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("value: truncated row header")
	}
	n := int(binary.BigEndian.Uint32(buf[:4]))
	off := 4
	row := make(Row, 0, n)
	for i := 0; i < n; i++ {
		v, used, err := DecodeValue(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: row column %d: %w", i, err)
		}
		row = append(row, v)
		off += used
	}
	return row, off, nil
}
