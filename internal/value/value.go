// Package value defines the SQL value model shared by the storage engine,
// the SQL layer, and the DLFM metadata code: typed scalar values, rows, and
// composite keys with a total ordering suitable for B-tree indexes.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind int

// The supported value kinds. The ordering of the constants defines the
// cross-kind sort order (NULL sorts lowest, as in DB2 ascending indexes
// with NULLS FIRST).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an INTEGER value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a VARCHAR value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a BOOLEAN value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload. It panics unless v is an INTEGER or
// BOOLEAN value; callers are expected to have type-checked already.
func (v Value) Int64() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic("value: Int64 on " + v.kind.String())
	}
	return v.i
}

// Text returns the string payload. It panics unless v is a VARCHAR.
func (v Value) Text() string {
	if v.kind != KindString {
		panic("value: Text on " + v.kind.String())
	}
	return v.s
}

// IsTrue reports whether v is the boolean TRUE.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.i != 0 }

// Compare orders two values. Values of different kinds order by kind
// (NULL < BOOLEAN < INTEGER < VARCHAR); within a kind the natural order
// applies. The result is -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool, KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.s, o.s)
	}
	return 0
}

// Equal reports whether v and o are the same value (NULL equals NULL here;
// SQL ternary logic is applied at the expression layer, not in storage).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value for diagnostics and query output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted and
// escaped), usable when composing statements.
func (v Value) SQLLiteral() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Row is an ordered tuple of values, matching a table schema.
type Row []Value

// Clone returns a copy of the row that shares no mutable state.
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for diagnostics.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key is a composite index key: an ordered tuple of values compared
// lexicographically.
type Key []Value

// CompareKeys orders two composite keys lexicographically; a shorter key
// that is a prefix of a longer one sorts first (so a prefix probe can use
// CompareKeys as a lower bound).
func CompareKeys(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// HasPrefix reports whether k begins with the given prefix key.
func (k Key) HasPrefix(prefix Key) bool {
	if len(prefix) > len(k) {
		return false
	}
	for i, v := range prefix {
		if k[i].Compare(v) != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the key.
func (k Key) Clone() Key {
	if k == nil {
		return nil
	}
	out := make(Key, len(k))
	copy(out, k)
	return out
}

// String renders the key for diagnostics and lock names.
func (k Key) String() string {
	parts := make([]string, len(k))
	for i, v := range k {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, "|") + "]"
}
