package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindString: "VARCHAR",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if Int(7).Int64() != 7 {
		t.Error("Int(7).Int64() != 7")
	}
	if Str("x").Text() != "x" {
		t.Error(`Str("x").Text() != "x"`)
	}
	if !Bool(true).IsTrue() || Bool(false).IsTrue() {
		t.Error("Bool truth values wrong")
	}
	if Int(1).IsTrue() {
		t.Error("Int(1).IsTrue() should be false: not a boolean")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Str.Int64", func() { Str("a").Int64() })
	mustPanic("Int.Text", func() { Int(1).Text() })
	mustPanic("Null.Text", func() { Null.Text() })
}

func TestCompareWithinKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Int(math.MinInt64), Int(math.MaxInt64), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("abc"), Str("abc"), 0},
		{Str("ab"), Str("abc"), -1},
		{Bool(false), Bool(true), -1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	// NULL < BOOLEAN < INTEGER < VARCHAR.
	ordered := []Value{Null, Bool(true), Int(math.MinInt64), Str("")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Int(-42), "-42"},
		{Str("hello"), "hello"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteralEscaping(t *testing.T) {
	if got := Str("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral = %q, want 'o''brien'", got)
	}
	if got := Int(3).SQLLiteral(); got != "3" {
		t.Errorf("SQLLiteral(Int) = %q", got)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].Int64() != 1 {
		t.Error("Clone shares backing array with original")
	}
	if Row(nil).Clone() != nil {
		t.Error("nil row Clone should be nil")
	}
}

func TestCompareKeys(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{Int(1)}, Key{Int(2)}, -1},
		{Key{Int(1), Str("b")}, Key{Int(1), Str("a")}, 1},
		{Key{Int(1)}, Key{Int(1), Str("a")}, -1}, // prefix sorts first
		{Key{Int(1), Str("a")}, Key{Int(1), Str("a")}, 0},
		{Key{}, Key{Int(0)}, -1},
		{Key{}, Key{}, 0},
	}
	for _, c := range cases {
		if got := CompareKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareKeys(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyHasPrefix(t *testing.T) {
	k := Key{Str("f"), Int(0)}
	if !k.HasPrefix(Key{Str("f")}) {
		t.Error("HasPrefix single-column prefix failed")
	}
	if !k.HasPrefix(k) {
		t.Error("HasPrefix full key failed")
	}
	if k.HasPrefix(Key{Str("g")}) {
		t.Error("HasPrefix wrong prefix succeeded")
	}
	if k.HasPrefix(Key{Str("f"), Int(0), Int(1)}) {
		t.Error("HasPrefix longer-than-key prefix succeeded")
	}
}

func TestEncodeDecodeValueRoundTrip(t *testing.T) {
	vals := []Value{Null, Bool(true), Bool(false), Int(0), Int(-1), Int(math.MaxInt64), Str(""), Str("hello world"), Str("emb\x00edded")}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeValue(%v) consumed %d of %d bytes", v, n, len(buf))
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{Int(1)},
		{Int(1), Str("file.txt"), Null, Bool(true)},
	}
	for _, r := range rows {
		buf := AppendRow(nil, r)
		got, n, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeRow consumed %d of %d bytes", n, len(buf))
		}
		if len(got) != len(r) {
			t.Fatalf("row length %d, want %d", len(got), len(r))
		}
		for i := range r {
			if !got[i].Equal(r[i]) {
				t.Errorf("column %d: got %v, want %v", i, got[i], r[i])
			}
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	bad := [][]byte{
		{},                                  // empty
		{byte(KindInt)},                     // truncated int
		{byte(KindString)},                  // truncated header
		{byte(KindString), 0, 0, 0, 5, 'a'}, // truncated payload
		{200},                               // unknown kind
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(%v) succeeded, want error", b)
		}
	}
	if _, _, err := DecodeRow([]byte{0, 0}); err == nil {
		t.Error("DecodeRow truncated header succeeded")
	}
	if _, _, err := DecodeRow([]byte{0, 0, 0, 1}); err == nil {
		t.Error("DecodeRow missing column succeeded")
	}
}

// Property: Compare is antisymmetric and round-trip encoding preserves order.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		buf := AppendValue(nil, Str(s))
		v, n, err := DecodeValue(buf)
		return err == nil && n == len(buf) && v.Kind() == KindString && v.Text() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyCompareTransitive(t *testing.T) {
	f := func(a, b, c int64, s1, s2, s3 string) bool {
		ka := Key{Int(a), Str(s1)}
		kb := Key{Int(b), Str(s2)}
		kc := Key{Int(c), Str(s3)}
		// If ka <= kb and kb <= kc then ka <= kc.
		if CompareKeys(ka, kb) <= 0 && CompareKeys(kb, kc) <= 0 {
			return CompareKeys(ka, kc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
