package hostdb

import (
	"fmt"

	"repro/internal/rpc"
	"repro/internal/value"
)

// XA global transactions (Section 3.3): "In the case of an XA transaction,
// the host database also generates a local transaction id that is
// different from the global XA transaction id … If the transaction is a
// branch of a global (distributed) transaction, prepare request to the
// DLFM is invoked as part of global prepare processing and commit/abort
// request is invoked when the outcome of the global transaction is known."
//
// Here the host database is itself a participant: an external transaction
// manager drives PrepareGlobal and later CommitGlobal/AbortGlobal. The
// host's prepare cascades phase 1 to every enlisted DLFM and then hardens
// its own branch with the engine's prepared-transaction support; the
// host-to-engine transaction-id mapping is made durable *inside* the
// prepared branch (table dl_xa), so that after a crash the DLFM sub-
// transactions can be resolved from the engine log's authoritative outcome.

// PrepareGlobal runs phase 1 of the global transaction on this branch.
// After it returns nil the branch is indoubt until CommitGlobal or
// AbortGlobal.
func (s *Session) PrepareGlobal() error {
	if s.txn == 0 {
		return fmt.Errorf("hostdb: no transaction to prepare")
	}
	if s.dead {
		return ErrTxnRolledBack
	}
	// The durable host-txn → engine-txn mapping; inserting it also makes
	// sure an engine transaction exists to prepare.
	if _, err := s.conn.Exec(`INSERT INTO dl_xa (host_txn, engine_txn) VALUES (?, ?)`,
		value.Int(s.txn), value.Int(s.conn.TxnID())); err != nil {
		s.rollbackInternal()
		return fmt.Errorf("%w: %v", ErrTxnRolledBack, err)
	}
	// Cascade phase 1 to every enlisted DLFM, fanned out like Commit's.
	outs := s.db.fanoutParts(s.sortedParts(), true, true, func(p *participant) (rpc.Response, error) {
		return p.client.Call(rpc.PrepareReq{Txn: s.txn})
	})
	for i := range outs {
		o := &outs[i]
		if o.skipped || !o.failed() {
			continue
		}
		s.rollbackInternal()
		if o.err != nil {
			return fmt.Errorf("%w: prepare at %s: %v", ErrTxnRolledBack, o.p.server, o.err)
		}
		return fmt.Errorf("%w: prepare at %s: %s: %s", ErrTxnRolledBack, o.p.server, o.resp.Code, o.resp.Msg)
	}
	// Harden the host branch.
	if err := s.conn.PrepareTxn(); err != nil {
		s.abortParts()
		s.markDead()
		return fmt.Errorf("%w: host prepare: %v", ErrTxnRolledBack, err)
	}
	s.preparedGlobal = true
	return nil
}

// CommitGlobal completes a prepared branch after the global coordinator
// decided commit.
func (s *Session) CommitGlobal() error {
	if s.txn == 0 || !s.preparedGlobal {
		return fmt.Errorf("hostdb: no globally prepared transaction")
	}
	// The engine commit is the branch's durable decision point; the DLFM
	// resolution path reads it from the engine log via dl_xa.
	if err := s.conn.CommitPrepared(); err != nil {
		return err
	}
	s.db.fanoutParts(s.sortedParts(), false, false, func(p *participant) (rpc.Response, error) {
		return p.client.Call(rpc.CommitReq{Txn: s.txn}) // errors settle via indoubt resolution
	})
	s.db.stats.Commits.Add(1)
	s.finishTxn()
	return nil
}

// AbortGlobal rolls a prepared branch back after the coordinator decided
// abort.
func (s *Session) AbortGlobal() error {
	if s.txn == 0 || !s.preparedGlobal {
		return fmt.Errorf("hostdb: no globally prepared transaction")
	}
	if err := s.conn.RollbackPrepared(); err != nil {
		return err
	}
	s.abortParts()
	s.db.stats.Aborts.Add(1)
	s.finishTxn()
	return nil
}

// sortedParts returns the enlisted participants in deterministic order.
func (s *Session) sortedParts() []*participant {
	var enlisted []*participant
	for _, p := range s.parts {
		if p.begun {
			enlisted = append(enlisted, p)
		}
	}
	for i := 1; i < len(enlisted); i++ {
		for j := i; j > 0 && enlisted[j-1].server > enlisted[j].server; j-- {
			enlisted[j-1], enlisted[j] = enlisted[j], enlisted[j-1]
		}
	}
	return enlisted
}

// HostIndoubtBranches lists host transaction ids whose branches crash
// recovery restored in the prepared state, for the external coordinator.
func (db *DB) HostIndoubtBranches() ([]int64, error) {
	engineIndoubt := make(map[int64]bool)
	for _, id := range db.eng.IndoubtTxns() {
		engineIndoubt[id] = true
	}
	if len(engineIndoubt) == 0 {
		return nil, nil
	}
	// dl_xa rows written by indoubt branches are X-locked by those very
	// branches; the diagnostic dump reads through the locks, which is what
	// a restart-time resolution utility needs.
	rows, err := db.eng.DumpTable("dl_xa")
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, r := range rows {
		if engineIndoubt[r[1].Int64()] {
			out = append(out, r[0].Int64())
		}
	}
	return out, nil
}

// ResolveHostBranch applies the global coordinator's decision to an
// indoubt host branch after a crash: the engine branch is committed or
// rolled back, and the decision cascades to the DLFM sub-transactions.
func (db *DB) ResolveHostBranch(hostTxn int64, commit bool) error {
	rows, err := db.eng.DumpTable("dl_xa")
	if err != nil {
		return err
	}
	var engineTxn int64
	for _, r := range rows {
		if r[0].Int64() == hostTxn {
			engineTxn = r[1].Int64()
			break
		}
	}
	if engineTxn == 0 {
		return fmt.Errorf("hostdb: no XA mapping for host transaction %d", hostTxn)
	}
	if err := db.eng.ResolveIndoubt(engineTxn, commit); err != nil {
		return err
	}
	// Cascade to the DLFMs (fresh connections; the crash severed the
	// session's).
	for _, server := range db.Servers() {
		dial, err := db.dialer(server)
		if err != nil {
			continue
		}
		client, err := dial()
		if err != nil {
			continue // the indoubt daemon will settle it later
		}
		if commit {
			client.Call(rpc.CommitReq{Txn: hostTxn}) //nolint:errcheck
		} else {
			client.Call(rpc.AbortReq{Txn: hostTxn}) //nolint:errcheck
		}
		client.Close()
	}
	return nil
}

// xaOutcome consults the XA mapping for a DLFM indoubt transaction: the
// engine log's outcome for the mapped branch is authoritative. Returns
// ("commit"|"abort"|"wait"|"none").
func (db *DB) xaOutcome(hostTxn int64) (string, error) {
	rows, err := db.eng.DumpTable("dl_xa")
	if err != nil {
		return "", err
	}
	for _, r := range rows {
		if r[0].Int64() != hostTxn {
			continue
		}
		outcome, err := db.eng.TxnOutcome(r[1].Int64())
		if err != nil {
			return "", err
		}
		switch outcome {
		case "committed":
			return "commit", nil
		case "prepared":
			return "wait", nil // the global outcome is not known yet
		default:
			return "abort", nil
		}
	}
	return "none", nil
}
