package hostdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/sql"
	"repro/internal/value"
)

// fpBetweenPhases interrupts Commit after the decision is durably recorded
// but before any phase-2 request is sent — the coordinator-crash window.
// Participants stay prepared (indoubt) until ResolveIndoubts re-drives the
// recorded decision.
var fpBetweenPhases = fault.P("hostdb.commit.between_phases")

// Errors surfaced by sessions.
var (
	// ErrTxnRolledBack: a severe DLFM error (deadlock/timeout in its local
	// database) forced a full-transaction rollback, as Section 3.2
	// prescribes ("the host database will always rollback the full
	// transaction").
	ErrTxnRolledBack = errors.New("hostdb: transaction rolled back")
	// ErrStatement: the statement failed and was backed out; the
	// transaction continues.
	ErrStatement = errors.New("hostdb: statement failed")
	// ErrCommitUnacked: the transaction IS committed — the decision is
	// durable (outcome record or acceptor quorum) — but the coordinator was
	// interrupted before every participant heard phase 2. Participants
	// settle through indoubt resolution (2PC) or their own outcome
	// learners (Paxos); callers must treat the transaction as committed.
	ErrCommitUnacked = errors.New("hostdb: committed but not acknowledged")
)

// participant is one DLFM enlisted in the current transaction.
type participant struct {
	server string
	client *rpc.Client
	begun  bool
}

// stmtOp records a DLFM operation of the in-flight statement, so a
// statement-level error can be compensated with in_backout requests
// (Section 3.2's savepoint rollback).
type stmtOp struct {
	server string
	name   string
	isLink bool
	recID  int64 // the operation's recovery id, identifying it for backout
}

// Session is one application connection to the host database, served by
// one DB2 agent in the paper's architecture. Not safe for concurrent use.
type Session struct {
	db   *DB
	conn *engine.Conn
	txn  int64
	// parts persist across transactions (the connection to a DLFM child
	// agent is long-lived); begun is reset per transaction.
	parts map[string]*participant
	dead  bool
	// preparedGlobal marks an XA branch after PrepareGlobal: only
	// CommitGlobal/AbortGlobal are valid until it resolves.
	preparedGlobal bool
	// stmtSpan is the span context of the statement currently executing,
	// parenting the per-operation DLFM RPC spans.
	stmtSpan obs.SpanCtx
}

// Session opens an application connection.
func (db *DB) Session() *Session {
	return &Session{db: db, conn: db.eng.Connect(), parts: make(map[string]*participant)}
}

// TxnID exposes the current host transaction id (0 when idle).
func (s *Session) TxnID() int64 { return s.txn }

// Close abandons any open transaction and disconnects from the DLFMs.
func (s *Session) Close() {
	if s.txn != 0 {
		s.Rollback()
	}
	for _, p := range s.parts {
		p.client.Close()
	}
	s.parts = nil
}

// begin starts a transaction if none is open. Starting a NEW transaction
// passes through admission control: under overload it fails with
// ErrOverload and the session stays idle — statements of an already-open
// transaction are never refused.
func (s *Session) begin() error {
	if s.txn == 0 {
		if err := s.db.admit(); err != nil {
			return err
		}
		s.txn = s.db.NextTxn()
		s.dead = false
		s.db.markActive(s.txn)
		s.db.tracer.Emit(s.txn, "host", "txn_begin", "")
		// The host txn id doubles as the trace id. Attaching it to the
		// engine connection makes the engine bind its local txn id on the
		// implicit begin, so host-side lock waits and fsyncs find their
		// trace; the sampling decision happens inside the tracer.
		if s.db.tracer.Sampled(s.txn) {
			s.conn.SetSpanCtx(obs.SpanCtx{Trace: s.txn})
		}
	}
	return nil
}

// part returns (dialing if necessary) the participant for server and
// enlists it in the current transaction.
func (s *Session) part(server string) (*participant, error) {
	p := s.parts[server]
	if p == nil {
		dial, err := s.db.dialer(server)
		if err != nil {
			return nil, err
		}
		client, err := dial()
		if err != nil {
			s.db.noteDLFMFailure(server, err)
			return nil, fmt.Errorf("hostdb: connect to DLFM %q: %w", server, err)
		}
		client.SetTracer(s.db.tracer)
		p = &participant{server: server, client: client}
		s.parts[server] = p
	}
	if !p.begun {
		resp, err := p.client.Call(rpc.BeginTxnReq{Txn: s.txn})
		if err != nil {
			s.db.noteDLFMFailure(server, err)
			s.dropPart(server)
			return nil, err
		}
		if !resp.OK() {
			return nil, fmt.Errorf("hostdb: BeginTransaction at %s: %s", server, resp.Msg)
		}
		p.begun = true
		s.db.noteDLFMSuccess(server)
	}
	return p, nil
}

// dropPart closes and forgets a cached participant whose connection failed,
// so the next transaction re-dials through the server's current dialer —
// which after a failover points at the promoted standby.
func (s *Session) dropPart(server string) {
	if p := s.parts[server]; p != nil {
		p.client.Close()
		delete(s.parts, server)
	}
}

// abandonParts closes every participant connection. After a commit is
// interrupted before phase 2, the agent on the other end of each
// connection is pinned to the prepared transaction until its outcome
// arrives from resolution or a learner — reusing the connection would only
// collect "transaction still active" errors. Fresh dials replace them on
// the session's next transaction.
func (s *Session) abandonParts() {
	for server := range s.parts {
		s.dropPart(server)
	}
}

// Exec executes one SQL statement, intercepting DATALINK column activity.
func (s *Session) Exec(text string, params ...value.Value) (int64, error) {
	if s.dead {
		return 0, fmt.Errorf("%w: acknowledge with Rollback", ErrTxnRolledBack)
	}
	if s.preparedGlobal {
		return 0, fmt.Errorf("hostdb: transaction %d is globally prepared; only CommitGlobal/AbortGlobal are valid", s.txn)
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return 0, err
	}
	if err := s.begin(); err != nil {
		return 0, err
	}
	sp := s.db.tracer.StartSpanInTrace(s.txn, 0, "host", "stmt").Attr("sql", truncateSQL(text))
	s.stmtSpan = sp.Ctx()
	if sp != nil {
		// Host-engine lock waits during this statement nest under it.
		s.conn.SetSpanCtx(sp.Ctx())
	}
	defer func() {
		s.stmtSpan = obs.SpanCtx{}
		if sp != nil {
			s.conn.SetSpanCtx(obs.SpanCtx{Trace: s.txn})
		}
		sp.End()
	}()
	switch st := stmt.(type) {
	case sql.Insert:
		return s.execInsert(st, params)
	case sql.Update:
		return s.execUpdate(st, params)
	case sql.Delete:
		return s.execDelete(st, params)
	default:
		n, err := s.conn.Exec(text, params...)
		return n, s.mapEngineErr(err)
	}
}

// truncateSQL bounds the statement text recorded as a span attribute.
func truncateSQL(text string) string {
	const max = 80
	if len(text) > max {
		return text[:max] + "…"
	}
	return text
}

// mapEngineErr converts host-engine deadlock/timeout (which already rolled
// the engine transaction back) into a dead-session state: the DLFM side is
// aborted too, as the paper's host does.
func (s *Session) mapEngineErr(err error) error {
	if err == nil {
		return nil
	}
	if engine.IsRetryable(err) {
		// The engine already rolled the local transaction back (deadlock
		// victim / lock timeout); acknowledge it so the connection is
		// usable again, and abort the DLFM side.
		if s.conn.InTxn() {
			s.conn.Rollback()
		}
		s.abortParts()
		s.markDead()
		return fmt.Errorf("%w: %v", ErrTxnRolledBack, err)
	}
	return err
}

func (s *Session) markDead() {
	s.dead = true
	s.db.stats.Aborts.Add(1)
}

// dlfmFailure converts a DLFM error response mid-statement. Severe errors
// (the DLFM's local database rolled its sub-transaction back) force a full
// host rollback; benign ones surface as statement errors after the caller
// backs out the statement's prior operations. A "standby" refusal means the
// session reached a fenced standby — rolled back like a severe error; the
// retry re-dials and lands on whichever server is primary by then.
func (s *Session) dlfmFailure(server string, resp rpc.Response, callErr error, done []stmtOp) error {
	if callErr != nil {
		// Transport failure: the DLFM (or its connection) died.
		s.db.noteDLFMFailure(server, callErr)
		s.dropPart(server)
		s.rollbackInternal()
		return fmt.Errorf("%w: DLFM unreachable: %v", ErrTxnRolledBack, callErr)
	}
	switch resp.Code {
	case "deadlock", "timeout", "severe", "logfull", "standby":
		s.rollbackInternal()
		return fmt.Errorf("%w: DLFM %s: %s", ErrTxnRolledBack, resp.Code, resp.Msg)
	default:
		s.backoutStatement(done)
		return fmt.Errorf("%w: %s: %s", ErrStatement, resp.Code, resp.Msg)
	}
}

// backoutStatement undoes this statement's DLFM operations with in_backout
// requests, in reverse order (Section 3.2). A failure during backout is a
// severe condition: the whole transaction rolls back.
func (s *Session) backoutStatement(done []stmtOp) {
	for i := len(done) - 1; i >= 0; i-- {
		op := done[i]
		p := s.parts[op.server]
		if p == nil {
			continue
		}
		var resp rpc.Response
		var err error
		if op.isLink {
			resp, err = p.client.Call(rpc.LinkFileReq{Txn: s.txn, Name: op.name, InBackout: true})
		} else {
			resp, err = p.client.Call(rpc.UnlinkFileReq{Txn: s.txn, Name: op.name, RecID: op.recID, InBackout: true})
		}
		if err != nil || !resp.OK() {
			s.rollbackInternal()
			return
		}
		s.db.stats.StmtBackouts.Add(1)
	}
}

// linkFile drives one LinkFile at the right DLFM, creating the file group
// there first if this is the group's first file on that server. The URL's
// server name routes through the placement map when it names a cluster, so
// the whole statement (and the later 2PC fan-out, keyed by the physical
// member recorded in the stmtOp) is placement-aware; the route is held
// until the RPC returns, so a slot fence cannot cut over mid-call.
func (s *Session) linkFile(url string, col dlCol) (int64, stmtOp, error) {
	server, path, err := ParseURL(url)
	if err != nil {
		return 0, stmtOp{}, fmt.Errorf("%w: %v", ErrStatement, err)
	}
	phys, release, err := s.db.route(server, path)
	if err != nil {
		// A fence timeout fails the statement, not the transaction: the
		// application retries and routes against the post-move table.
		return 0, stmtOp{}, fmt.Errorf("%w: %v", ErrStatement, err)
	}
	defer release()
	p, err := s.part(phys)
	if err != nil {
		s.rollbackInternal()
		return 0, stmtOp{}, fmt.Errorf("%w: %v", ErrTxnRolledBack, err)
	}
	if err := s.ensureGroup(p, col); err != nil {
		return 0, stmtOp{}, err
	}
	rec := s.db.NextRecID()
	sp := s.db.tracer.StartSpan(s.stmtSpan, "host", "rpc:LinkFile").Attr("server", phys)
	resp, err := p.client.CallCtx(sp.Ctx(), rpc.LinkFileReq{Txn: s.txn, Name: path, RecID: rec, Grp: col.grp})
	sp.End()
	if err != nil || !resp.OK() {
		return 0, stmtOp{}, s.dlfmFailure(phys, resp, err, nil)
	}
	s.db.stats.Links.Add(1)
	return rec, stmtOp{server: phys, name: path, isLink: true, recID: rec}, nil
}

// unlinkFile drives one UnlinkFile, routing clustered names like linkFile.
func (s *Session) unlinkFile(url string, col dlCol) (stmtOp, error) {
	server, path, err := ParseURL(url)
	if err != nil {
		return stmtOp{}, fmt.Errorf("%w: %v", ErrStatement, err)
	}
	phys, release, err := s.db.route(server, path)
	if err != nil {
		return stmtOp{}, fmt.Errorf("%w: %v", ErrStatement, err)
	}
	defer release()
	p, err := s.part(phys)
	if err != nil {
		s.rollbackInternal()
		return stmtOp{}, fmt.Errorf("%w: %v", ErrTxnRolledBack, err)
	}
	rec := s.db.NextRecID()
	sp := s.db.tracer.StartSpan(s.stmtSpan, "host", "rpc:UnlinkFile").Attr("server", phys)
	resp, err := p.client.CallCtx(sp.Ctx(), rpc.UnlinkFileReq{Txn: s.txn, Name: path, RecID: rec, Grp: col.grp})
	sp.End()
	if err != nil || !resp.OK() {
		return stmtOp{}, s.dlfmFailure(phys, resp, err, nil)
	}
	s.db.stats.Unlinks.Add(1)
	return stmtOp{server: phys, name: path, isLink: false, recID: rec}, nil
}

// ensureGroup creates the column's file group at the participant's server
// on first use, transactionally on both sides.
func (s *Session) ensureGroup(p *participant, col dlCol) error {
	n, _, err := s.conn.QueryInt(`SELECT COUNT(*) FROM dl_grpsrv WHERE grp = ? AND server = ?`,
		value.Int(col.grp), value.Str(p.server))
	if err != nil {
		return s.mapEngineErr(err)
	}
	if n > 0 {
		return nil
	}
	resp, err := p.client.Call(rpc.CreateGroupReq{
		Txn: s.txn, Grp: col.grp, Recovery: col.recovery, FullControl: col.fullctl,
	})
	// "duplicate" means the group already exists at this member — slot
	// migration installs groups ahead of the dl_grpsrv note, so treat
	// creation as idempotent and just record the placement.
	if err != nil || (!resp.OK() && resp.Code != "duplicate") {
		return s.dlfmFailure(p.server, resp, err, nil)
	}
	if _, err := s.conn.Exec(`INSERT INTO dl_grpsrv (grp, server) VALUES (?, ?)`,
		value.Int(col.grp), value.Str(p.server)); err != nil {
		// A concurrent session (or a move's noteGroup) may have recorded the
		// placement between our COUNT and the INSERT; the note is all we
		// needed, so the race loser carries on.
		if errors.Is(err, engine.ErrDuplicate) {
			return nil
		}
		return s.mapEngineErr(err)
	}
	return nil
}

// execInsert intercepts INSERT into a table with DATALINK columns: each
// non-null DATALINK value is linked in the same transaction, and the hidden
// recovery-id column is filled.
func (s *Session) execInsert(st sql.Insert, params []value.Value) (int64, error) {
	cols, err := s.db.datalinkCols(s.conn, st.Table)
	if err != nil {
		return 0, s.mapEngineErr(err)
	}
	if len(cols) == 0 {
		n, err := s.conn.Exec(renderInsert(st, nil, nil), params...)
		return n, s.mapEngineErr(err)
	}
	if st.Cols == nil {
		return 0, fmt.Errorf("hostdb: INSERT into a DATALINK table must name its columns")
	}
	byName := make(map[string]dlCol, len(cols))
	for _, c := range cols {
		byName[c.name] = c
	}
	var done []stmtOp
	var extraCols []string
	var extraVals []value.Value
	for i, colName := range st.Cols {
		col, isDL := byName[colName]
		if !isDL {
			continue
		}
		v, err := evalConst(st.Vals[i], params)
		if err != nil {
			return 0, err
		}
		if v.IsNull() {
			continue
		}
		rec, op, err := s.linkFile(v.Text(), col)
		if err != nil {
			s.backoutStatement(done)
			return 0, err
		}
		done = append(done, op)
		extraCols = append(extraCols, recidCol(colName))
		extraVals = append(extraVals, value.Int(rec))
	}
	n, err := s.conn.Exec(renderInsert(st, extraCols, extraVals), append(params, extraVals...)...)
	if err != nil {
		if engine.IsRetryable(err) {
			return 0, s.mapEngineErr(err)
		}
		s.backoutStatement(done)
		return 0, err
	}
	return n, nil
}

// renderInsert re-renders the INSERT with extra (hidden) columns appended;
// extra values arrive as appended parameters.
func renderInsert(st sql.Insert, extraCols []string, extraVals []value.Value) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(st.Table)
	if st.Cols != nil {
		b.WriteString(" (")
		b.WriteString(strings.Join(st.Cols, ", "))
		for _, c := range extraCols {
			b.WriteString(", ")
			b.WriteString(c)
		}
		b.WriteString(")")
	}
	b.WriteString(" VALUES (")
	for i, e := range st.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(renderExpr(e))
	}
	for range extraVals {
		b.WriteString(", ?")
	}
	b.WriteString(")")
	return b.String()
}

func renderExpr(e sql.Expr) string {
	switch v := e.(type) {
	case sql.Literal:
		return v.V.SQLLiteral()
	case sql.Param:
		return "?"
	case sql.Column:
		return v.Name
	default:
		return "?"
	}
}

// evalConst evaluates a literal-or-parameter expression.
func evalConst(e sql.Expr, params []value.Value) (value.Value, error) {
	switch v := e.(type) {
	case sql.Literal:
		return v.V, nil
	case sql.Param:
		if v.Idx >= len(params) {
			return value.Null, fmt.Errorf("hostdb: missing parameter %d", v.Idx+1)
		}
		return params[v.Idx], nil
	default:
		return value.Null, fmt.Errorf("hostdb: DATALINK expressions must be literals or parameters")
	}
}

// execUpdate intercepts UPDATE statements that assign DATALINK columns:
// for each affected row the old file is unlinked and the new one linked,
// all in the same transaction ("an important customer requirement",
// Section 3.2).
func (s *Session) execUpdate(st sql.Update, params []value.Value) (int64, error) {
	cols, err := s.db.datalinkCols(s.conn, st.Table)
	if err != nil {
		return 0, s.mapEngineErr(err)
	}
	byName := make(map[string]dlCol, len(cols))
	for _, c := range cols {
		byName[c.name] = c
	}
	var touched []dlCol
	var newVals []value.Value
	for _, a := range st.Sets {
		if col, isDL := byName[a.Col]; isDL {
			v, err := evalConst(a.Val, params)
			if err != nil {
				return 0, err
			}
			touched = append(touched, col)
			newVals = append(newVals, v)
		}
	}
	if len(touched) == 0 {
		n, err := s.conn.Exec(renderUpdate(st, nil), params...)
		return n, s.mapEngineErr(err)
	}

	// Identify affected rows and their old DATALINK values, X-locking them.
	where, err := renderPreds(st.Where, params)
	if err != nil {
		return 0, err
	}
	sel := "SELECT " + joinCols(touched) + " FROM " + st.Table + where + " FOR UPDATE"
	rows, err := s.conn.Query(sel)
	if err != nil {
		return 0, s.mapEngineErr(err)
	}

	var done []stmtOp
	var recs []value.Value // one per touched column: the new link's recid
	failed := func(err error) (int64, error) {
		s.backoutStatement(done)
		return 0, err
	}
	// Unlink old values (each row's), then link the new value once per
	// column. Multiple matched rows sharing one new URL would violate the
	// one-link-per-file rule and surface as a duplicate error.
	for _, row := range rows {
		for i := range touched {
			old := row[i]
			if old.IsNull() || old.Text() == "" {
				continue
			}
			op, err := s.unlinkFile(old.Text(), touched[i])
			if err != nil {
				if errors.Is(err, ErrTxnRolledBack) {
					return 0, err
				}
				return failed(err)
			}
			done = append(done, op)
		}
	}
	for i, col := range touched {
		if newVals[i].IsNull() || newVals[i].Text() == "" {
			recs = append(recs, value.Null)
			continue
		}
		nlinks := len(rows)
		for j := 0; j < nlinks; j++ {
			rec, op, err := s.linkFile(newVals[i].Text(), col)
			if err != nil {
				if errors.Is(err, ErrTxnRolledBack) {
					return 0, err
				}
				return failed(err)
			}
			done = append(done, op)
			recs = append(recs, value.Int(rec))
			break // one link; extra rows reuse it and fail naturally on commit semantics
		}
		if nlinks == 0 {
			recs = append(recs, value.Null)
		}
	}

	// Rewrite the UPDATE to also set the hidden recid columns. The recid
	// values are inlined as literals: appending them as parameters would
	// shift the WHERE clause's markers out of position.
	assigns := make([]string, len(touched))
	for i, col := range touched {
		assigns[i] = recidCol(col.name) + " = " + recs[i].SQLLiteral()
	}
	n, err := s.conn.Exec(renderUpdateWithRecids(st, assigns), params...)
	if err != nil {
		if engine.IsRetryable(err) {
			return 0, s.mapEngineErr(err)
		}
		return failed(err)
	}
	return n, nil
}

func joinCols(cols []dlCol) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c.name
	}
	return strings.Join(parts, ", ")
}

func renderUpdate(st sql.Update, _ []string) string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(st.Table)
	b.WriteString(" SET ")
	for i, a := range st.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Col)
		b.WriteString(" = ")
		b.WriteString(renderExpr(a.Val))
	}
	b.WriteString(wherePlaceholder(st.Where))
	return b.String()
}

// renderUpdateWithRecids renders the UPDATE with extra pre-rendered
// "col = literal" assignments appended to the SET list.
func renderUpdateWithRecids(st sql.Update, assigns []string) string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(st.Table)
	b.WriteString(" SET ")
	for i, a := range st.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Col)
		b.WriteString(" = ")
		b.WriteString(renderExpr(a.Val))
	}
	for _, a := range assigns {
		b.WriteString(", ")
		b.WriteString(a)
	}
	b.WriteString(wherePlaceholder(st.Where))
	return b.String()
}

// wherePlaceholder re-renders the WHERE clause preserving ? markers (the
// original parameters are re-passed in the same order).
func wherePlaceholder(preds []sql.Pred) string {
	if len(preds) == 0 {
		return ""
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.Col + " " + p.Op.String() + " " + renderExpr(p.Val)
	}
	return " WHERE " + strings.Join(parts, " AND ")
}

// execDelete intercepts DELETE from a DATALINK table: each referenced file
// is unlinked in the same transaction.
func (s *Session) execDelete(st sql.Delete, params []value.Value) (int64, error) {
	cols, err := s.db.datalinkCols(s.conn, st.Table)
	if err != nil {
		return 0, s.mapEngineErr(err)
	}
	if len(cols) == 0 {
		n, err := s.conn.Exec("DELETE FROM "+st.Table+wherePlaceholder(st.Where), params...)
		return n, s.mapEngineErr(err)
	}
	where, err := renderPreds(st.Where, params)
	if err != nil {
		return 0, err
	}
	rows, err := s.conn.Query("SELECT " + joinCols(cols) + " FROM " + st.Table + where + " FOR UPDATE")
	if err != nil {
		return 0, s.mapEngineErr(err)
	}
	var done []stmtOp
	for _, row := range rows {
		for i, col := range cols {
			if row[i].IsNull() || row[i].Text() == "" {
				continue
			}
			op, err := s.unlinkFile(row[i].Text(), col)
			if err != nil {
				if errors.Is(err, ErrTxnRolledBack) {
					return 0, err
				}
				s.backoutStatement(done)
				return 0, err
			}
			done = append(done, op)
		}
	}
	n, err := s.conn.Exec("DELETE FROM "+st.Table+wherePlaceholder(st.Where), params...)
	if err != nil {
		if engine.IsRetryable(err) {
			return 0, s.mapEngineErr(err)
		}
		s.backoutStatement(done)
		return 0, err
	}
	return n, nil
}

// Query runs a SELECT. DATALINK values in full-access-control columns come
// back with an access token appended (url#token), ready for the DLFF.
func (s *Session) Query(text string, params ...value.Value) ([]value.Row, error) {
	if s.dead {
		return nil, fmt.Errorf("%w: acknowledge with Rollback", ErrTxnRolledBack)
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, isSel := stmt.(sql.Select)
	if !isSel {
		return nil, fmt.Errorf("hostdb: Query requires a SELECT")
	}
	if err := s.begin(); err != nil {
		return nil, err
	}
	rows, err := s.conn.Query(text, params...)
	if err != nil {
		return nil, s.mapEngineErr(err)
	}
	cols, err := s.db.datalinkCols(s.conn, sel.Table)
	if err != nil || len(cols) == 0 {
		return rows, s.mapEngineErr(err)
	}

	// Map output columns to DATALINK registry entries.
	fullctl := make(map[string]bool, len(cols))
	hidden := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.fullctl {
			fullctl[c.name] = true
		}
		hidden[recidCol(c.name)] = true
	}
	var outNames []string
	if sel.Star {
		meta, err := s.db.eng.Catalog().Table(sel.Table)
		if err != nil {
			return rows, nil
		}
		for _, c := range meta.Schema.Cols {
			outNames = append(outNames, c.Name)
		}
	} else if sel.Agg == sql.AggNone {
		outNames = sel.Cols
	}
	if outNames == nil {
		return rows, nil
	}

	// Token-append and hidden-column stripping.
	keep := make([]int, 0, len(outNames))
	for i, name := range outNames {
		if !(sel.Star && hidden[name]) {
			keep = append(keep, i)
		}
	}
	out := make([]value.Row, len(rows))
	for r, row := range rows {
		proj := make(value.Row, 0, len(keep))
		for _, i := range keep {
			v := row[i]
			if fullctl[outNames[i]] && !v.IsNull() && v.Text() != "" {
				if _, path, err := ParseURL(v.Text()); err == nil {
					if tok := s.db.MintToken(path); tok != "" {
						v = value.Str(v.Text() + "#" + tok)
					}
				}
			}
			proj = append(proj, v)
		}
		out[r] = proj
	}
	return out, nil
}

// Commit drives the two-phase commit across every enlisted DLFM
// (Section 3.3): prepare all, record and harden the decision locally, then
// commit all — synchronously unless the configuration opts into the
// asynchronous variant that the paper shows to be deadlock-prone.
func (s *Session) Commit() error {
	if s.txn == 0 {
		return engine.ErrNoTxn
	}
	if s.dead {
		return ErrTxnRolledBack
	}
	if s.preparedGlobal {
		return fmt.Errorf("hostdb: transaction %d is globally prepared; use CommitGlobal/AbortGlobal", s.txn)
	}
	var enlisted []*participant
	for _, p := range s.parts {
		if p.begun {
			enlisted = append(enlisted, p)
		}
	}
	// Deterministic participant order (map iteration is random). With the
	// parallel fan-out this no longer fixes the order prepares hit the
	// wire — and it does not need to: each DLFM acquired its locks at
	// statement (link/unlink) time, long before prepare, so send order
	// never decides lock order and parallelizing it cannot create new
	// deadlocks (cross-DLFM cycles are the lock timeout's job, Section 4).
	// The sort fixes which failure is *reported* when several prepares
	// fail at once, keeping errors and accounting deterministic.
	sort.Slice(enlisted, func(i, j int) bool { return enlisted[i].server < enlisted[j].server })
	if len(enlisted) == 0 {
		root := s.db.tracer.StartRoot(s.txn, "host", "commit")
		if root != nil {
			s.conn.SetSpanCtx(root.Ctx())
		}
		err := s.commitLocal()
		root.End()
		s.finishTxn()
		return err
	}

	// Fast path: exactly one participant — delegate the decision to it and
	// skip the prepare round entirely.
	if len(enlisted) == 1 && s.db.cfg.OnePhase {
		return s.commitOnePhase(enlisted[0])
	}

	start := time.Now()
	txn := s.txn
	s.db.tracer.Emitf(txn, "host", "2pc_prepare", "%d participants", len(enlisted))

	// The root span covers the whole commit. Phase 1 runs from the first
	// prepare through the durable decision write — Gray & Lamport's cost
	// model ends phase 1 at the coordinator's stable write, so the local
	// outcome insert and engine commit (with its fsync) belong to it.
	// End is idempotent, so the deferred pair only matters on the error
	// paths; attribution is exported once the root duration is final.
	root := s.db.tracer.StartRoot(txn, "host", "commit")
	p1 := s.db.tracer.StartSpan(root.Ctx(), "host", "phase1")
	committed := false
	defer func() {
		p1.End()
		root.End()
		if committed {
			s.db.observeAttribution(txn)
		}
	}()
	if p1 != nil {
		s.conn.SetSpanCtx(p1.Ctx())
	}

	// Presumed commit: force the "collecting" record (outcome 'I') in its
	// own small transaction before any participant prepares. From here on
	// an absent row can only mean the commit record was garbage-collected
	// after every phase-2 ack — i.e. commit — while a surviving 'I' row
	// means the transaction never committed.
	if s.db.cfg.PresumedCommit {
		if err := s.db.writeOutcome(txn, "I"); err != nil {
			return s.abortCommit(txn, fmt.Errorf("%w: %v", ErrTxnRolledBack, err))
		}
	}

	// Phase 1: prepare every DLFM concurrently (bounded by CommitFanout).
	// One "no" vote or transport error aborts everyone — including
	// participants that already voted yes — and cancels prepares not yet
	// issued. Accounting runs after the join, on this goroutine, over the
	// ordered outcome slice, so it is exactly as precise as the sequential
	// loop was.
	outs := s.db.fanoutParts(enlisted, true, true, func(p *participant) (rpc.Response, error) {
		sp := s.db.tracer.StartSpan(p1.Ctx(), "host", "rpc:Prepare").Attr("server", p.server)
		resp, err := p.client.CallCtx(sp.Ctx(), rpc.PrepareReq{Txn: txn})
		sp.End()
		return resp, err
	})
	var prepErr error
	for i := range outs {
		o := &outs[i]
		if o.skipped {
			continue
		}
		if o.err != nil {
			s.db.noteDLFMFailure(o.p.server, o.err)
			s.dropPart(o.p.server)
			if prepErr == nil {
				prepErr = fmt.Errorf("%w: prepare of txn %d failed: %v", ErrTxnRolledBack, s.txn, o.err)
			}
		} else if !o.resp.OK() && prepErr == nil {
			prepErr = fmt.Errorf("%w: prepare of txn %d failed: %s: %s", ErrTxnRolledBack, s.txn, o.resp.Code, o.resp.Msg)
		}
	}
	if prepErr != nil {
		return s.abortCommit(txn, prepErr)
	}

	// Read-only voters have already released everything; they are excluded
	// from phase 2 (and from the paxos instance list below).
	writers := make([]*participant, 0, len(enlisted))
	for i := range outs {
		if outs[i].resp.ReadOnly {
			s.db.stats.ReadOnlyVotes.Add(1)
			continue
		}
		writers = append(writers, outs[i].p)
	}
	if len(writers) == 0 {
		// Every participant voted read-only: no decision record, no
		// phase 2 — the commit degenerates to a local commit.
		if err := s.commitLocal(); err != nil {
			return s.abortCommit(txn, fmt.Errorf("%w: %v", ErrTxnRolledBack, err))
		}
		if s.db.cfg.PresumedCommit {
			s.db.gcOutcome(txn)
		}
		p1.End()
		committed = true
		s.db.stats.Commits.Add(1)
		s.db.commitHist.ObserveEx(time.Since(start), txn)
		s.db.tracer.Emit(s.txn, "host", "2pc_done", "readonly")
		s.finishTxn()
		return nil
	}

	if s.db.protocol() == "paxos" {
		return s.commitPaxos(root, p1, writers, txn, start, &committed)
	}

	// Decision: record the outcome inside the host transaction and commit
	// it. Presumed abort: only committed transactions leave a row. Under
	// presumed commit the pre-written 'I' row is promoted instead.
	var decErr error
	if s.db.cfg.PresumedCommit {
		_, decErr = s.conn.Exec(`UPDATE dl_outcome SET outcome = 'C' WHERE txnid = ?`, value.Int(s.txn))
	} else {
		_, decErr = s.conn.Exec(`INSERT INTO dl_outcome (txnid, outcome) VALUES (?, 'C')`, value.Int(s.txn))
	}
	if decErr != nil {
		return s.abortCommit(txn, fmt.Errorf("%w: %v", ErrTxnRolledBack, decErr))
	}
	if err := s.commitLocal(); err != nil {
		return s.abortCommit(txn, fmt.Errorf("%w: %v", ErrTxnRolledBack, err))
	}
	s.db.tracer.Emit(s.txn, "host", "2pc_decision_commit", "")
	p1.End()
	if err := fpBetweenPhases.Fire(); err != nil {
		// The decision is already durable; the transaction IS committed even
		// though no participant has heard. Deliberately not ErrTxnRolledBack.
		s.abandonParts()
		s.finishTxn()
		return fmt.Errorf("%w: commit of txn %d interrupted before phase 2 (outcome recorded): %v", ErrCommitUnacked, txn, err)
	}

	// Phase 2. The paper's hard-won rule: this must be synchronous, or the
	// T1/T11/T2 distributed deadlock of Section 4 appears (experiment E6).
	allAcked := s.phase2Fanout(root, writers, txn, true)
	if s.db.cfg.PresumedCommit && allAcked {
		// Every participant acknowledged: the commit record has served its
		// purpose, and from now on its absence means commit — forget it.
		s.db.gcOutcome(txn)
	}
	committed = true
	s.db.stats.Commits.Add(1)
	s.db.commitHist.ObserveEx(time.Since(start), txn)
	s.db.tracer.Emit(s.txn, "host", "2pc_done", "")
	s.finishTxn()
	return nil
}

// abortCommit is the shared abort tail of the commit paths: abort every
// begun participant, roll the local transaction back, and — under presumed
// commit, once every participant acknowledged the abort — drop the
// collecting row.
func (s *Session) abortCommit(txn int64, err error) error {
	allAcked := s.abortParts()
	if s.conn.InTxn() {
		s.conn.Rollback()
	}
	if s.db.cfg.PresumedCommit && allAcked {
		s.db.gcOutcome(txn)
	}
	s.finishTxn()
	s.db.stats.Aborts.Add(1)
	return err
}

// phase2Fanout drives the durable decision to every participant and
// reports whether all of them acknowledged synchronously (always false in
// the asynchronous variant, whose acks land off-session). Failed or
// severe participants are parked for directed retry by the resolution
// daemon.
func (s *Session) phase2Fanout(root *obs.SpanHandle, parts []*participant, txn int64, commit bool) bool {
	decision, rpcName := "abort", "rpc:Abort"
	if commit {
		decision, rpcName = "commit", "rpc:Commit"
	}
	call := func(ctx obs.SpanCtx, p *participant) (rpc.Response, error) {
		if commit {
			return p.client.CallCtx(ctx, rpc.CommitReq{Txn: txn})
		}
		return p.client.CallCtx(ctx, rpc.AbortReq{Txn: txn})
	}
	if s.db.cfg.SyncCommit {
		// Transport errors leave the transaction indoubt; the resolution
		// daemon settles it later. Both transport errors and phase-2
		// give-ups ("severe" after the DLFM exhausts its retries) count
		// toward standby failover. The fan-out never stops early: the
		// decision is durable and every participant must hear it.
		p2span := s.db.tracer.StartSpan(root.Ctx(), "host", "phase2")
		p2 := s.db.fanoutParts(parts, false, false, func(p *participant) (rpc.Response, error) {
			sp := s.db.tracer.StartSpan(p2span.Ctx(), "host", rpcName).Attr("server", p.server)
			resp, err := call(sp.Ctx(), p)
			sp.End()
			return resp, err
		})
		p2span.End()
		allAcked := true
		for i := range p2 {
			o := &p2[i]
			switch {
			case o.err != nil:
				s.db.noteDLFMFailure(o.p.server, o.err)
				s.dropPart(o.p.server)
				s.db.parkIndoubt(txn, o.p.server, decision)
				allAcked = false
			case o.resp.Code == "severe":
				s.db.noteDLFMFailure(o.p.server, fmt.Errorf("phase-2 give-up: %s", o.resp.Msg))
				s.db.parkIndoubt(txn, o.p.server, decision)
				allAcked = false
			default:
				s.db.noteDLFMSuccess(o.p.server)
			}
		}
		return allAcked
	}
	// Asynchronous variant: the commit request is on the wire before
	// Commit returns, and the child agent stays busy until it answers
	// — so the agent's next caller "blocks on message send". The
	// result is drained off-session so transport errors and severe
	// give-ups still feed failover accounting; the session itself is
	// gone by then, so no dropPart (Session state is not
	// goroutine-safe) — the next dial replaces the participant anyway.
	p2span := s.db.tracer.StartSpan(root.Ctx(), "host", "phase2")
	for _, p := range parts {
		sp := s.db.tracer.StartSpan(p2span.Ctx(), "host", rpcName).Attr("server", p.server)
		var res <-chan rpc.CallResult
		if commit {
			res = p.client.GoCtx(sp.Ctx(), rpc.CommitReq{Txn: txn})
		} else {
			res = p.client.GoCtx(sp.Ctx(), rpc.AbortReq{Txn: txn})
		}
		go func(server string, sp *obs.SpanHandle, res <-chan rpc.CallResult) {
			r := <-res
			sp.End()
			switch {
			case r.Err != nil:
				s.db.noteDLFMFailure(server, r.Err)
			case r.Resp.Code == "severe":
				s.db.noteDLFMFailure(server, fmt.Errorf("phase-2 give-up: %s", r.Resp.Msg))
			default:
				s.db.noteDLFMSuccess(server)
			}
		}(p.server, sp, res)
	}
	// In async mode the span covers only the send window; the per-call
	// spans end when each DLFM answers.
	p2span.End()
	return false
}

// Enlist joins server to the current transaction without performing any
// file operation there. The participant will cast a read-only vote at
// prepare (if the DLFM has the fast path enabled) unless later statements
// write through it; benchmarks and tests use Enlist to shape
// multi-participant transactions.
func (s *Session) Enlist(server string) error {
	if s.dead {
		return fmt.Errorf("%w: acknowledge with Rollback", ErrTxnRolledBack)
	}
	if err := s.begin(); err != nil {
		return err
	}
	_, err := s.part(server)
	return err
}

// commitLocal commits the host engine transaction (a session that only
// read may have no engine transaction at all).
func (s *Session) commitLocal() error {
	if !s.conn.InTxn() {
		return nil
	}
	return s.conn.Commit()
}

// Rollback aborts the transaction on every DLFM and locally.
func (s *Session) Rollback() error {
	if s.txn == 0 {
		return engine.ErrNoTxn
	}
	if s.preparedGlobal {
		return fmt.Errorf("hostdb: transaction %d is globally prepared; use CommitGlobal/AbortGlobal", s.txn)
	}
	if !s.dead {
		s.rollbackInternal()
	}
	s.finishTxn()
	return nil
}

// rollbackInternal aborts DLFM participants and the local engine txn, then
// marks the session dead until the application acknowledges.
func (s *Session) rollbackInternal() {
	s.db.tracer.Emit(s.txn, "host", "rollback", "")
	s.abortParts()
	if s.conn.InTxn() {
		s.conn.Rollback()
	}
	s.markDead()
}

// abortParts aborts every begun participant and reports whether all of
// them acknowledged (the presumed-commit abort path may only drop its
// collecting row once they have).
func (s *Session) abortParts() bool {
	var begun []*participant
	for _, p := range s.parts {
		if p.begun {
			begun = append(begun, p)
		}
	}
	sort.Slice(begun, func(i, j int) bool { return begun[i].server < begun[j].server })
	outs := s.db.fanoutParts(begun, false, false, func(p *participant) (rpc.Response, error) {
		return p.client.Call(rpc.AbortReq{Txn: s.txn})
	})
	allAcked := true
	for i := range outs {
		if outs[i].err != nil {
			// The abort is lost with the server; presumed abort covers
			// it at resolution time.
			s.db.noteDLFMFailure(outs[i].p.server, outs[i].err)
			s.dropPart(outs[i].p.server)
			allAcked = false
		} else if !outs[i].resp.OK() {
			allAcked = false
		}
	}
	return allAcked
}

// finishTxn resets per-transaction state.
func (s *Session) finishTxn() {
	if s.txn != 0 {
		s.db.unmarkActive(s.txn)
	}
	s.txn = 0
	s.dead = false
	s.preparedGlobal = false
	s.stmtSpan = obs.SpanCtx{}
	s.conn.SetSpanCtx(obs.SpanCtx{})
	for _, p := range s.parts {
		p.begun = false
	}
}
