package hostdb

import (
	"errors"
	"time"
)

// Admission control: under open-loop load the host cannot rely on clients
// slowing down when it falls behind — arrivals keep coming at the configured
// rate no matter how deep the queues get. Left alone, the overload spiral is
// the one the paper warns about twice: the engine lock list fills until
// forced escalation serializes the hot tables ("lock escalation in any of
// the metadata tables usually brings the system to its knees"), and the WAL
// group-commit queue grows until every commit waits behind an unbounded
// fsync convoy. Shedding NEW transactions at the door keeps the transactions
// already admitted inside their latency budget; the shed ones fail fast with
// ErrOverload and the client retries later. In-flight transactions are never
// refused — admission is checked only when a session starts a fresh
// transaction, so a multi-statement transaction cannot be cut off halfway.

// ErrOverload rejects a new transaction at admission: the engine's lock
// list or the WAL group-commit queue is too close to its limit. The
// transaction was not started; the caller may retry after backing off.
var ErrOverload = errors.New("hostdb: overloaded, new transaction not admitted")

// admissionPressure reports the two backpressure signals: the held-lock
// count as a fraction of the engine's LockListSize cap (0 when uncapped)
// and the WAL group-commit queue depth.
func (db *DB) admissionPressure() (lockFrac float64, walQueue int) {
	lm := db.eng.LockManager()
	if limit := lm.LockListLimit(); limit > 0 {
		lockFrac = float64(lm.HeldTotal()) / float64(limit)
	}
	return lockFrac, db.eng.WAL().GroupCommitQueueDepth()
}

// overloaded answers whether a new transaction should be refused right now.
func (db *DB) overloaded() bool {
	lockFrac, walQueue := db.admissionPressure()
	if f := db.cfg.AdmissionLockFrac; f > 0 && lockFrac >= f {
		return true
	}
	if max := db.cfg.AdmissionWALQueueMax; max > 0 && walQueue >= max {
		return true
	}
	return false
}

// admit gates the start of a new transaction. With both knobs zero it is
// free. Under pressure it first delays up to AdmissionMaxDelay — a short
// arrival-side queue that absorbs bursts without refusing them — and sheds
// with ErrOverload only if the pressure has not cleared by then.
func (db *DB) admit() error {
	if db.cfg.AdmissionLockFrac <= 0 && db.cfg.AdmissionWALQueueMax <= 0 {
		return nil
	}
	if !db.overloaded() {
		return nil
	}
	if d := db.cfg.AdmissionMaxDelay; d > 0 {
		db.stats.AdmissionDelayed.Add(1)
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			time.Sleep(admissionPollInterval)
			if !db.overloaded() {
				return nil
			}
		}
	}
	db.stats.AdmissionShed.Add(1)
	return ErrOverload
}

// admissionPollInterval paces the delay loop's pressure re-checks.
const admissionPollInterval = 500 * time.Microsecond
