package hostdb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/rpc"
	"repro/internal/value"
)

// linkedOn counts linked, commit-visible entries for a member's DLFM.
func (st *stack) linkedOn(server string) map[string]bool {
	st.t.Helper()
	rows, err := st.dlfm[server].DB().DumpTable("dlfm_file")
	if err != nil {
		st.t.Fatal(err)
	}
	out := map[string]bool{}
	for _, r := range rows {
		if r[6].Text() == "L" && r[7].Int64() == 0 {
			out[r[0].Text()] = true
		}
	}
	return out
}

// clusterStack builds a stack whose members all join logical cluster "dlfs".
func clusterStack(t *testing.T, members ...string) *stack {
	t.Helper()
	st := newStack(t, members)
	for _, m := range members {
		if _, err := st.db.AddDLFM("dlfs", m, st.db.dialers[m]); err != nil {
			t.Fatalf("AddDLFM(%s): %v", m, err)
		}
	}
	return st
}

// seedClusterFiles creates n files on whichever member currently owns each
// path and links them through the logical name. Returns the paths.
func (st *stack) seedClusterFiles(n int) []string {
	st.t.Helper()
	m := st.db.Cluster("dlfs")
	s := st.db.Session()
	defer s.Close()
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/clips/c%03d.mpg", i)
		st.createFile(m.Owner(path), path, "alice", "clip")
		st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (?, ?, ?)`,
			value.Int(int64(i)), value.Str("t"), value.Str(URL("dlfs", path)))
		paths = append(paths, path)
	}
	if err := s.Commit(); err != nil {
		st.t.Fatal(err)
	}
	return paths
}

// checkPlacement asserts every path's entry lives exactly on its owner.
func (st *stack) checkPlacement(paths []string) {
	st.t.Helper()
	m := st.db.Cluster("dlfs")
	byServer := map[string]map[string]bool{}
	for name := range st.dlfm {
		byServer[name] = st.linkedOn(name)
	}
	for _, p := range paths {
		owner := m.Owner(p)
		if !byServer[owner][p] {
			st.t.Errorf("path %s: no linked entry on owner %s", p, owner)
		}
		for name, linked := range byServer {
			if name != owner && linked[p] {
				st.t.Errorf("path %s: stray linked entry on %s (owner %s)", p, name, owner)
			}
		}
	}
}

func TestClusterLinkSpreadsAndMigrates(t *testing.T) {
	st := clusterStack(t, "m1")
	st.mediaTable(false, false)
	paths := st.seedClusterFiles(24)
	st.checkPlacement(paths)

	// Join a second member online: its rendezvous share migrates over.
	if _, err := st.addMember("m2"); err != nil {
		t.Fatal(err)
	}
	m := st.db.Cluster("dlfs")
	if got := len(m.Members()); got != 2 {
		t.Fatalf("members = %d, want 2", got)
	}
	st.checkPlacement(paths)
	moved := 0
	for _, p := range paths {
		if m.Owner(p) == "m2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no paths moved to m2 — migration did nothing")
	}

	// The file bytes moved too: the new owner's file server can stat them.
	for _, p := range paths {
		if _, err := st.fs[m.Owner(p)].Stat(p); err != nil {
			t.Errorf("bytes for %s missing on owner %s: %v", p, m.Owner(p), err)
		}
	}

	// Writes after the move route to the new owners: unlink half the rows.
	s := st.db.Session()
	defer s.Close()
	for i := 0; i < 12; i++ {
		st.mustExec(s, `DELETE FROM media WHERE id = ?`, value.Int(int64(i)))
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st.checkPlacement(paths[12:])
	for name := range st.dlfm {
		for _, p := range paths[:12] {
			if st.linkedOn(name)[p] {
				t.Errorf("unlinked path %s still linked on %s", p, name)
			}
		}
	}

	// Drain m2: everything returns to m1 and m2 empties out.
	if _, err := st.db.DrainDLFM("dlfs", "m2"); err != nil {
		t.Fatal(err)
	}
	if m.HasMember("m2") {
		t.Fatal("m2 still a member after drain")
	}
	if left := st.linkedOn("m2"); len(left) != 0 {
		t.Fatalf("m2 still holds %d linked entries after drain", len(left))
	}
	st.checkPlacement(paths[12:])

	// And the namespace still works end to end after the drain.
	s2 := st.db.Session()
	defer s2.Close()
	path := "/clips/post-drain.mpg"
	st.createFile(m.Owner(path), path, "alice", "clip")
	st.mustExec(s2, `INSERT INTO media (id, title, clip) VALUES (?, ?, ?)`,
		value.Int(1000), value.Str("t"), value.Str(URL("dlfs", path)))
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// addMember builds a fresh DLFM (file server, archive, core) under name and
// joins it to the cluster online, the way an operator scales out.
func (st *stack) addMember(name string) (int, error) {
	st.t.Helper()
	fs := fsim.NewServer(name)
	ar := archive.NewServer()
	cfg := core.DefaultConfig(name)
	cfg.DB.LockTimeout = 2 * time.Second
	dlfm, err := core.New(cfg, fs, ar)
	if err != nil {
		st.t.Fatal(err)
	}
	st.t.Cleanup(func() { dlfm.Close() })
	st.fs[name] = fs
	st.arch[name] = ar
	st.dlfm[name] = dlfm
	return st.db.AddDLFM("dlfs", name, func() (*rpc.Client, error) {
		return rpc.LocalPair(dlfm), nil
	})
}

func TestClusterGroupAttributesSurviveMove(t *testing.T) {
	st := clusterStack(t, "m1")
	st.mediaTable(true, true) // recovery + full control
	paths := st.seedClusterFiles(12)
	if _, err := st.addMember("m2"); err != nil {
		t.Fatal(err)
	}
	m := st.db.Cluster("dlfs")
	movedTo := ""
	for _, p := range paths {
		if m.Owner(p) == "m2" {
			movedTo = p
			break
		}
	}
	if movedTo == "" {
		t.Skip("no seeded path moved to m2")
	}
	rows, err := st.dlfm["m2"].DB().DumpTable("dlfm_group")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range rows {
		if g[3].Text() != "A" {
			continue
		}
		found = true
		if g[1].Int64() != 1 || g[2].Int64() != 1 {
			t.Fatalf("migrated group lost attributes: recovery=%d fullctl=%d", g[1].Int64(), g[2].Int64())
		}
	}
	if !found {
		t.Fatal("no active group on m2 after migration")
	}

	// DROP TABLE must fan out to the migrated member too (dl_grpsrv row
	// written by the mover's NoteGroup hook).
	if err := st.db.DropTable("media"); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPlacementPersistsAcrossCrash(t *testing.T) {
	st := clusterStack(t, "m1", "m2", "m3")
	st.mediaTable(false, false)
	st.seedClusterFiles(16)
	want := st.db.Cluster("dlfs").Snapshot()

	if err := st.db.Crash(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := placementStore{db: st.db}.LoadTable("dlfs")
	if err != nil || !ok {
		t.Fatalf("placement load after crash: ok=%v err=%v", ok, err)
	}
	if got.Version != want.Version || got.Slots != want.Slots {
		t.Fatalf("recovered table v%d/%d slots, want v%d/%d", got.Version, got.Slots, want.Version, want.Slots)
	}
	for s := range got.Owners {
		if got.Owners[s] != want.Owners[s] {
			t.Fatalf("slot %d recovered owner %q, want %q", s, got.Owners[s], want.Owners[s])
		}
	}

	// A fresh map under a new host over the same engine would see the same
	// table; here just confirm cluster.New-level recovery derives members.
	if m := got.Members(); len(m) != 3 {
		t.Fatalf("recovered members = %v", m)
	}
}

func TestRebalancePinsSlot(t *testing.T) {
	st := clusterStack(t, "m1", "m2")
	st.mediaTable(false, false)
	paths := st.seedClusterFiles(16)
	m := st.db.Cluster("dlfs")

	// Pin some m1-owned slot holding a seeded path onto m2.
	slot := -1
	var pinned string
	for _, p := range paths {
		if m.Owner(p) == "m1" {
			slot = cluster.SlotOf(p, m.Slots())
			pinned = p
			break
		}
	}
	if slot < 0 {
		t.Skip("no m1-owned seeded path")
	}
	if _, err := st.db.Rebalance("dlfs", slot, "m2"); err != nil {
		t.Fatal(err)
	}
	if got := m.Owner(pinned); got != "m2" {
		t.Fatalf("pinned path owned by %q, want m2", got)
	}
	if !st.linkedOn("m2")[pinned] {
		t.Fatal("pinned path's entry did not migrate to m2")
	}
	st.checkPlacement(paths)
}
