package hostdb

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/rpc"
	"repro/internal/value"
)

// stack is a complete DataLinks deployment: a host database plus one or
// more DLFM-managed file servers, wired with in-process transports.
type stack struct {
	t    *testing.T
	db   *DB
	fs   map[string]*fsim.Server
	arch map[string]*archive.Server
	dlfm map[string]*core.Server
}

func newStack(t *testing.T, servers []string, mutate ...func(*Config, map[string]*core.Config)) *stack {
	t.Helper()
	st := &stack{
		t:    t,
		fs:   make(map[string]*fsim.Server),
		arch: make(map[string]*archive.Server),
		dlfm: make(map[string]*core.Server),
	}
	hostCfg := DefaultConfig("hostdb")
	hostCfg.DB.LockTimeout = 2 * time.Second
	dlfmCfgs := make(map[string]*core.Config, len(servers))
	for _, name := range servers {
		cfg := core.DefaultConfig(name)
		cfg.DB.LockTimeout = 2 * time.Second
		dlfmCfgs[name] = &cfg
	}
	for _, m := range mutate {
		m(&hostCfg, dlfmCfgs)
	}
	db, err := Open(hostCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st.db = db
	for _, name := range servers {
		fs := fsim.NewServer(name)
		ar := archive.NewServer()
		dlfm, err := core.New(*dlfmCfgs[name], fs, ar)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dlfm.Close() })
		st.fs[name] = fs
		st.arch[name] = ar
		st.dlfm[name] = dlfm
		srv := dlfm
		db.RegisterDLFM(name, func() (*rpc.Client, error) {
			return rpc.LocalPair(srv), nil
		})
	}
	return st
}

func (st *stack) mustExec(s *Session, text string, params ...value.Value) int64 {
	st.t.Helper()
	n, err := s.Exec(text, params...)
	if err != nil {
		st.t.Fatalf("Exec(%q): %v", text, err)
	}
	return n
}

func (st *stack) createFile(server, path, owner, content string) {
	st.t.Helper()
	if err := st.fs[server].Create(path, owner, []byte(content)); err != nil {
		st.t.Fatal(err)
	}
}

// mediaTable creates the canonical test table with one DATALINK column.
func (st *stack) mediaTable(recovery, fullctl bool) {
	st.t.Helper()
	err := st.db.CreateTable(
		`CREATE TABLE media (id BIGINT NOT NULL, title VARCHAR, clip VARCHAR)`,
		DatalinkCol{Name: "clip", Recovery: recovery, FullControl: fullctl},
	)
	if err != nil {
		st.t.Fatal(err)
	}
}

func (st *stack) linkedOnDLFM(server, path string) bool {
	st.t.Helper()
	status, err := st.dlfm[server].Upcaller().IsLinked(path)
	if err != nil {
		st.t.Fatal(err)
	}
	return status.Linked
}

func TestInsertLinksAndCommit(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(true, true)
	st.createFile("fs1", "/v/clip1.mpg", "alice", "frames")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 'Jordan dunk', ?)`,
		value.Str(URL("fs1", "/v/clip1.mpg")))
	// Before commit the DLFM entry is uncommitted but the file already
	// appears linked to the writing agent; after commit it is durable.
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/v/clip1.mpg") {
		t.Fatal("file not linked after commit")
	}
	fi, _ := st.fs["fs1"].Stat("/v/clip1.mpg")
	if fi.Owner != "dlfmadm" || !fi.ReadOnly {
		t.Fatalf("takeover missing: %+v", fi)
	}
	if st.db.Stats().Links != 1 || st.db.Stats().Commits != 1 {
		t.Fatalf("stats = %+v", st.db.Stats())
	}
}

func TestRollbackUnlinks(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`,
		value.Str(URL("fs1", "/a")))
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("file linked after rollback")
	}
	rows, err := s.Query(`SELECT COUNT(*) FROM media`)
	if err != nil {
		t.Fatal(err)
	}
	s.Commit()
	if rows[0][0].Int64() != 0 {
		t.Fatal("host row survived rollback")
	}
}

func TestDeleteUnlinks(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st.mustExec(s, `DELETE FROM media WHERE id = 1`)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("file still linked after row delete")
	}
	// The file itself remains in the file system, now unmanaged.
	if err := st.fs["fs1"].Delete("/a"); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateSwapsLink(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/old", "alice", "x")
	st.createFile("fs1", "/new", "alice", "y")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/old")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st.mustExec(s, `UPDATE media SET clip = ? WHERE id = 1`, value.Str(URL("fs1", "/new")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/old") {
		t.Fatal("/old still linked")
	}
	if !st.linkedOnDLFM("fs1", "/new") {
		t.Fatal("/new not linked")
	}
	rows, _ := s.Query(`SELECT clip FROM media WHERE id = 1`)
	s.Commit()
	if rows[0][0].Text() != URL("fs1", "/new") {
		t.Fatalf("clip = %q", rows[0][0].Text())
	}
}

func TestUpdateRollbackRestoresOldLink(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/old", "alice", "x")
	st.createFile("fs1", "/new", "alice", "y")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/old")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st.mustExec(s, `UPDATE media SET clip = ? WHERE id = 1`, value.Str(URL("fs1", "/new")))
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/old") {
		t.Fatal("/old lost its link after rollback")
	}
	if st.linkedOnDLFM("fs1", "/new") {
		t.Fatal("/new linked after rollback")
	}
}

func TestStatementErrorBacksOutAndTxnContinues(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/good", "alice", "x")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 'ok', ?)`, value.Str(URL("fs1", "/good")))
	// Second statement references a missing file: statement error, the
	// transaction lives on.
	_, err := s.Exec(`INSERT INTO media (id, title, clip) VALUES (2, 'bad', ?)`, value.Str(URL("fs1", "/ghost")))
	if !errors.Is(err, ErrStatement) {
		t.Fatalf("err = %v, want ErrStatement", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/good") {
		t.Fatal("good link lost")
	}
	rows, _ := s.Query(`SELECT COUNT(*) FROM media`)
	s.Commit()
	if rows[0][0].Int64() != 1 {
		t.Fatalf("rows = %d, want 1", rows[0][0].Int64())
	}
}

func TestDuplicateLinkIsStatementError(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec(`INSERT INTO media (id, title, clip) VALUES (2, 't2', ?)`, value.Str(URL("fs1", "/a")))
	if !errors.Is(err, ErrStatement) || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
	s.Rollback()
}

func TestHostRowConstraintFailureBacksOutLink(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	if err := st.db.CreateTable(
		`CREATE TABLE media (id BIGINT NOT NULL, clip VARCHAR)`,
		DatalinkCol{Name: "clip"},
	); err != nil {
		t.Fatal(err)
	}
	c := st.db.Engine().Connect()
	if _, err := c.Exec(`CREATE UNIQUE INDEX media_id ON media (id)`); err != nil {
		t.Fatal(err)
	}
	st.createFile("fs1", "/a", "alice", "x")
	st.createFile("fs1", "/b", "alice", "y")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, clip) VALUES (1, ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Host unique-key violation after the link succeeded: the link must be
	// backed out.
	_, err := s.Exec(`INSERT INTO media (id, clip) VALUES (1, ?)`, value.Str(URL("fs1", "/b")))
	if err == nil {
		t.Fatal("duplicate host key accepted")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/b") {
		t.Fatal("/b stayed linked after host-row failure")
	}
	if st.db.Stats().StmtBackouts == 0 {
		t.Fatal("no statement backout recorded")
	}
}

func TestSelectMintsTokensForFullControl(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(true, true)
	st.createFile("fs1", "/v/x.mpg", "alice", "payload")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/v/x.mpg")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Query(`SELECT clip FROM media WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	s.Commit()
	got := rows[0][0].Text()
	hash := strings.IndexByte(got, '#')
	if hash < 0 {
		t.Fatalf("no token in %q", got)
	}
	url, token := got[:hash], got[hash+1:]
	if url != URL("fs1", "/v/x.mpg") {
		t.Fatalf("url = %q", url)
	}
	// The token opens the file through the DLFF.
	filter := fsim.NewFilter(st.fs["fs1"], st.dlfm["fs1"].Upcaller(), st.db.cfg.TokenSecret)
	content, err := filter.Open("/v/x.mpg", token)
	if err != nil || string(content) != "payload" {
		t.Fatalf("open with minted token: %q %v", content, err)
	}
	if _, err := filter.Open("/v/x.mpg", ""); err == nil {
		t.Fatal("open without token succeeded")
	}
	// SELECT * strips the hidden recid column.
	rows, _ = s.Query(`SELECT * FROM media WHERE id = 1`)
	s.Commit()
	if len(rows[0]) != 3 {
		t.Fatalf("SELECT * returned %d columns, want 3", len(rows[0]))
	}
}

func TestMultiServerTransaction(t *testing.T) {
	st := newStack(t, []string{"fs1", "fs2"})
	if err := st.db.CreateTable(
		`CREATE TABLE docs (id BIGINT, main VARCHAR, attach VARCHAR)`,
		DatalinkCol{Name: "main"}, DatalinkCol{Name: "attach"},
	); err != nil {
		t.Fatal(err)
	}
	st.createFile("fs1", "/m", "alice", "m")
	st.createFile("fs2", "/a", "alice", "a")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO docs (id, main, attach) VALUES (1, ?, ?)`,
		value.Str(URL("fs1", "/m")), value.Str(URL("fs2", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/m") || !st.linkedOnDLFM("fs2", "/a") {
		t.Fatal("multi-server links incomplete")
	}
	// Rollback path across two servers.
	st.createFile("fs1", "/m2", "alice", "m")
	st.createFile("fs2", "/a2", "alice", "a")
	st.mustExec(s, `INSERT INTO docs (id, main, attach) VALUES (2, ?, ?)`,
		value.Str(URL("fs1", "/m2")), value.Str(URL("fs2", "/a2")))
	s.Rollback()
	if st.linkedOnDLFM("fs1", "/m2") || st.linkedOnDLFM("fs2", "/a2") {
		t.Fatal("rollback did not undo links on both servers")
	}
}

// vetoFactory wraps a DLFM's agent factory and fails Prepare, simulating a
// participant voting no.
type vetoFactory struct {
	inner rpc.AgentFactory
	veto  bool
}

type vetoAgent struct {
	inner rpc.Agent
	f     *vetoFactory
}

func (f *vetoFactory) NewAgent() rpc.Agent { return &vetoAgent{inner: f.inner.NewAgent(), f: f} }

func (a *vetoAgent) Handle(req any) rpc.Response {
	if _, isPrepare := req.(rpc.PrepareReq); isPrepare && a.f.veto {
		return rpc.Response{Code: "severe", Msg: "injected prepare failure"}
	}
	return a.inner.Handle(req)
}

func (a *vetoAgent) Close() { a.inner.Close() }

func TestPrepareFailureAbortsAllParticipants(t *testing.T) {
	// "if one of the DLFMs fails to prepare the transaction, the host
	// database sends Abort request to all the remaining DLFMs, even though
	// they may have prepared successfully" (Section 3.3). Sequential
	// fan-out pins the order: fs1 must have prepared before fs2 vetoes,
	// so its abort is the compensating kind. (Parallel fan-out may cancel
	// fs1's prepare before it is issued, which is also correct but does
	// not exercise this path.)
	st := newStack(t, []string{"fs1", "fs2"}, func(cfg *Config, _ map[string]*core.Config) {
		cfg.CommitFanout = 1
	})
	veto := &vetoFactory{inner: st.dlfm["fs2"]}
	st.db.RegisterDLFM("fs2", func() (*rpc.Client, error) {
		return rpc.LocalPair(veto), nil
	})
	if err := st.db.CreateTable(
		`CREATE TABLE docs (id BIGINT, main VARCHAR, attach VARCHAR)`,
		DatalinkCol{Name: "main"}, DatalinkCol{Name: "attach"},
	); err != nil {
		t.Fatal(err)
	}
	st.createFile("fs1", "/m", "alice", "m")
	st.createFile("fs2", "/a", "alice", "a")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO docs (id, main, attach) VALUES (1, ?, ?)`,
		value.Str(URL("fs1", "/m")), value.Str(URL("fs2", "/a")))
	veto.veto = true
	if err := s.Commit(); err == nil {
		t.Fatal("commit succeeded despite prepare veto")
	}
	// fs1 prepared successfully but must have aborted.
	if st.linkedOnDLFM("fs1", "/m") {
		t.Fatal("fs1 kept its link after global abort")
	}
	if st.dlfm["fs1"].Stats().Compensations == 0 {
		t.Fatal("fs1 did not run abort compensation after its prepare")
	}
	// The host rows are gone too.
	rows, _ := s.Query(`SELECT COUNT(*) FROM docs`)
	s.Commit()
	if rows[0][0].Int64() != 0 {
		t.Fatal("host row survived the aborted 2PC")
	}
}

func TestIndoubtResolutionAfterDLFMCrash(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	st.createFile("fs1", "/b", "alice", "y")

	// Manufacture two indoubt transactions directly against the DLFM: one
	// whose outcome row says commit, one unknown (presumed abort).
	commitTxn, abortTxn := st.db.NextTxn(), st.db.NextTxn()
	cols, _ := st.db.datalinkCols(st.db.eng.Connect(), "media")
	grp := cols[0].grp
	raw := rpc.LocalPair(st.dlfm["fs1"])
	for _, step := range []any{
		rpc.BeginTxnReq{Txn: commitTxn},
		rpc.CreateGroupReq{Txn: commitTxn, Grp: grp},
		rpc.LinkFileReq{Txn: commitTxn, Name: "/a", RecID: st.db.NextRecID(), Grp: grp},
		rpc.PrepareReq{Txn: commitTxn},
	} {
		if resp, err := raw.Call(step); err != nil || !resp.OK() {
			t.Fatalf("%T: %+v %v", step, resp, err)
		}
	}
	raw2 := rpc.LocalPair(st.dlfm["fs1"])
	for _, step := range []any{
		rpc.BeginTxnReq{Txn: abortTxn},
		rpc.LinkFileReq{Txn: abortTxn, Name: "/b", RecID: st.db.NextRecID(), Grp: grp},
		rpc.PrepareReq{Txn: abortTxn},
	} {
		if resp, err := raw2.Call(step); err != nil || !resp.OK() {
			t.Fatalf("%T: %+v %v", step, resp, err)
		}
	}
	// The host recorded an outcome only for commitTxn (it crashed before
	// deciding abortTxn).
	c := st.db.Engine().Connect()
	if _, err := c.Exec(`INSERT INTO dl_outcome (txnid, outcome) VALUES (?, 'C')`, value.Int(commitTxn)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// DLFM crashes; both transactions become indoubt.
	if err := st.dlfm["fs1"].Crash(); err != nil {
		t.Fatal(err)
	}

	n, err := st.db.ResolveIndoubts()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resolved = %d, want 2", n)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("committed indoubt txn not applied")
	}
	if st.linkedOnDLFM("fs1", "/b") {
		t.Fatal("presumed-abort txn left its link")
	}
}

func TestIndoubtDaemonResolves(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	cols, _ := st.db.datalinkCols(st.db.eng.Connect(), "media")
	grp := cols[0].grp

	txn := st.db.NextTxn()
	raw := rpc.LocalPair(st.dlfm["fs1"])
	for _, step := range []any{
		rpc.BeginTxnReq{Txn: txn},
		rpc.CreateGroupReq{Txn: txn, Grp: grp},
		rpc.LinkFileReq{Txn: txn, Name: "/a", RecID: st.db.NextRecID(), Grp: grp},
		rpc.PrepareReq{Txn: txn},
	} {
		if resp, err := raw.Call(step); err != nil || !resp.OK() {
			t.Fatalf("%T: %+v %v", step, resp, err)
		}
	}
	if err := st.dlfm["fs1"].Crash(); err != nil {
		t.Fatal(err)
	}
	stop := st.db.StartIndoubtDaemon(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st.db.Stats().IndoubtsResolved > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("indoubt daemon never resolved the transaction")
}

func TestNoDLFMRegistered(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	s := st.db.Session()
	defer s.Close()
	_, err := s.Exec(`INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`,
		value.Str(URL("nowhere", "/a")))
	if err == nil {
		t.Fatal("link to unregistered server succeeded")
	}
	s.Rollback()
}

func TestMonotonicIDs(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	prev := st.db.NextTxn()
	for i := 0; i < 100; i++ {
		next := st.db.NextTxn()
		if next <= prev {
			t.Fatal("txn ids not monotonic")
		}
		prev = next
	}
	prevR := st.db.NextRecID()
	for i := 0; i < 100; i++ {
		next := st.db.NextRecID()
		if next <= prevR {
			t.Fatal("recovery ids not monotonic")
		}
		prevR = next
	}
}
