package hostdb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// Admission control refuses NEW transactions while the engine's held-lock
// count sits above the configured fraction of LockListSize, but never cuts
// off a transaction that is already in flight.
func TestAdmissionShedsOnLockPressure(t *testing.T) {
	st := newStack(t, []string{"fs1"}, func(h *Config, _ map[string]*core.Config) {
		// Shed at 20 held locks (0.5 * 40). Escalation stays out of the
		// picture: the per-txn threshold is off and the hoarder stops well
		// under the hard cap, so the held count climbs monotonically.
		h.DB.LockListSize = 40
		h.DB.EscalationThreshold = 0
		h.AdmissionLockFrac = 0.5
	})
	s1 := st.db.Session()
	defer s1.Close()
	if _, err := s1.Exec(`CREATE TABLE adm (id BIGINT NOT NULL, v VARCHAR NOT NULL)`); err != nil {
		t.Fatal(err)
	}

	// Hoard locks in one open transaction until past the high-water mark.
	for i := 0; st.db.Engine().LockManager().HeldTotal() < 20; i++ {
		if i >= 40 {
			t.Fatalf("held count stuck at %d after %d inserts",
				st.db.Engine().LockManager().HeldTotal(), i)
		}
		if _, err := s1.Exec(fmt.Sprintf(`INSERT INTO adm VALUES (%d, 'x')`, i)); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh transaction is refused at the door...
	s2 := st.db.Session()
	defer s2.Close()
	if _, err := s2.Exec(`INSERT INTO adm VALUES (1000, 'y')`); !errors.Is(err, ErrOverload) {
		t.Fatalf("new txn under pressure: err = %v, want ErrOverload", err)
	}
	if got := st.db.Stats().AdmissionShed; got == 0 {
		t.Error("AdmissionShed = 0 after a refusal")
	}

	// ...while the in-flight transaction keeps running.
	if _, err := s1.Exec(`INSERT INTO adm VALUES (2000, 'z')`); err != nil {
		t.Fatalf("in-flight txn refused: %v", err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pressure cleared with the commit; the shed client's retry is admitted.
	if _, err := s2.Exec(`INSERT INTO adm VALUES (1000, 'y')`); err != nil {
		t.Fatalf("retry after pressure cleared: %v", err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := s2.Query(`SELECT id FROM adm WHERE id = 1000`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("retried insert not visible: rows=%v err=%v", rows, err)
	}
}

// With both knobs zero, admission is a no-op — the gauges still report the
// pressure signals for dashboards.
func TestAdmissionDisabledByDefault(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	if st.db.overloaded() {
		t.Fatal("fresh idle host reports overload")
	}
	if err := st.db.admit(); err != nil {
		t.Fatalf("admit with admission off: %v", err)
	}
	lockFrac, walQueue := st.db.admissionPressure()
	if lockFrac != 0 || walQueue != 0 {
		t.Fatalf("idle pressure = (%v, %d), want (0, 0)", lockFrac, walQueue)
	}
}
