package hostdb

import (
	"sync"
	"sync/atomic"

	"repro/internal/rpc"
)

// Parallel 2PC fan-out. Phase 1 and phase 2 are independent per-participant
// exchanges (Gray & Lamport's observation about the commit protocol), so
// the host issues them concurrently, bounded by Config.CommitFanout. All
// failure/severe accounting and participant bookkeeping stays on the
// session goroutine after the join: Session state is not goroutine-safe,
// and keeping the mutation single-threaded makes the parallel pipeline's
// accounting exactly as precise as the sequential one.

// defaultCommitFanout is the fan-out bound when Config.CommitFanout is 0 —
// wide enough to cover the e10 sweep's 8 participants in one wave.
const defaultCommitFanout = 8

// fanLimit resolves the configured fan-out bound.
func (db *DB) fanLimit() int {
	if db.cfg.CommitFanout > 0 {
		return db.cfg.CommitFanout
	}
	return defaultCommitFanout
}

// partOutcome is one participant's result from a fanned-out 2PC call.
type partOutcome struct {
	p    *participant
	resp rpc.Response
	err  error
	// skipped: the call was never issued because an earlier participant
	// had already failed (stopOnFailure). The participant is covered by
	// the caller's abort path, exactly like the not-yet-reached tail of
	// the sequential prepare loop.
	skipped bool
}

// failed reports whether the call was issued and did not come back OK.
func (o *partOutcome) failed() bool {
	return !o.skipped && (o.err != nil || !o.resp.OK())
}

// fanoutParts runs call against every participant with at most fanLimit in
// flight, returning outcomes in input order. With stopOnFailure, the first
// transport error or non-OK response prevents issuing calls that have not
// started yet — the parallel analogue of the sequential prepare loop
// breaking at the first "no" vote. Calls already on the wire run to
// completion so their votes are accounted. With trackGauge the in-flight
// count rides the host_prepare_fanout gauge.
//
// A fan-out limit of 1 degenerates to the exact sequential pipeline.
func (db *DB) fanoutParts(parts []*participant, stopOnFailure, trackGauge bool, call func(*participant) (rpc.Response, error)) []partOutcome {
	outs := make([]partOutcome, len(parts))
	for i, p := range parts {
		outs[i].p = p
	}
	if len(parts) == 0 {
		return outs
	}
	run := func(o *partOutcome) {
		if trackGauge {
			db.prepFanout.Add(1)
			defer db.prepFanout.Add(-1)
		}
		o.resp, o.err = call(o.p)
	}
	limit := db.fanLimit()
	if limit <= 1 || len(parts) == 1 {
		for i := range outs {
			if stopOnFailure && i > 0 && outs[i-1].failed() {
				// Propagate the stop: everything after the first failure
				// is skipped, like the unreached tail of a sequential loop.
				outs[i].skipped = true
				continue
			}
			run(&outs[i])
		}
		return outs
	}
	var (
		wg     sync.WaitGroup
		sem    = make(chan struct{}, limit)
		failed atomic.Bool
	)
	for i := range outs {
		wg.Add(1)
		go func(o *partOutcome) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if stopOnFailure && failed.Load() {
				o.skipped = true
				return
			}
			run(o)
			if o.failed() {
				failed.Store(true)
			}
		}(&outs[i])
	}
	wg.Wait()
	return outs
}
