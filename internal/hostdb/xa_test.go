package hostdb

import (
	"testing"
	"time"

	"repro/internal/value"
)

func TestXAGlobalCommit(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.PrepareGlobal(); err != nil {
		t.Fatal(err)
	}
	// Ordinary Commit is invalid on a prepared branch.
	if err := s.Commit(); err == nil {
		t.Fatal("Commit of prepared branch succeeded")
	}
	// Statements are invalid on a prepared branch.
	if _, err := s.Exec(`INSERT INTO media (id, title, clip) VALUES (2, 'x', NULL)`); err == nil {
		t.Fatal("statement after global prepare succeeded")
	}
	if err := s.CommitGlobal(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("link lost after global commit")
	}
	rows, _ := s.Query(`SELECT COUNT(*) FROM media`)
	s.Commit()
	if rows[0][0].Int64() != 1 {
		t.Fatalf("rows = %d", rows[0][0].Int64())
	}
}

func TestXAGlobalAbort(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.PrepareGlobal(); err != nil {
		t.Fatal(err)
	}
	if err := s.AbortGlobal(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("link survived global abort")
	}
	rows, _ := s.Query(`SELECT COUNT(*) FROM media`)
	s.Commit()
	if rows[0][0].Int64() != 0 {
		t.Fatalf("rows = %d", rows[0][0].Int64())
	}
	// The session is reusable after the abort.
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (2, 't2', NULL)`)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestXAPrepareWithoutTxn(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	s := st.db.Session()
	defer s.Close()
	if err := s.PrepareGlobal(); err == nil {
		t.Fatal("PrepareGlobal with no transaction succeeded")
	}
	if err := s.CommitGlobal(); err == nil {
		t.Fatal("CommitGlobal with no transaction succeeded")
	}
	if err := s.AbortGlobal(); err == nil {
		t.Fatal("AbortGlobal with no transaction succeeded")
	}
}

func TestXAHostCrashThenCoordinatorCommits(t *testing.T) {
	// The full XA crash story: both the host branch and the DLFM sub-
	// transaction survive the crash indoubt; the coordinator commits the
	// host branch and the decision cascades.
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	hostTxn := s.TxnID()
	if err := s.PrepareGlobal(); err != nil {
		t.Fatal(err)
	}
	// Host crashes while the branch is indoubt.
	if err := st.db.Crash(); err != nil {
		t.Fatal(err)
	}
	branches, err := st.db.HostIndoubtBranches()
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 1 || branches[0] != hostTxn {
		t.Fatalf("indoubt branches = %v, want [%d]", branches, hostTxn)
	}
	// While the global outcome is unknown, the DLFM-side resolution daemon
	// must NOT touch the sub-transaction ("wait").
	if _, err := st.db.ResolveIndoubts(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		// The sub-transaction's link is only hardened-not-committed; the
		// upcall sees the row (prepared data is in the heap) — acceptable
		// both ways, so no assertion here.
		_ = struct{}{}
	}
	// The coordinator decides commit.
	if err := st.db.ResolveHostBranch(hostTxn, true); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("link missing after coordinated commit")
	}
	s2 := st.db.Session()
	defer s2.Close()
	rows, err := s2.Query(`SELECT title FROM media WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	s2.Commit()
	if len(rows) != 1 {
		t.Fatalf("host row missing after coordinated commit: %v", rows)
	}
}

func TestXAHostCrashThenCoordinatorAborts(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	hostTxn := s.TxnID()
	if err := s.PrepareGlobal(); err != nil {
		t.Fatal(err)
	}
	if err := st.db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := st.db.ResolveHostBranch(hostTxn, false); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("link survived coordinated abort")
	}
	s2 := st.db.Session()
	defer s2.Close()
	rows, _ := s2.Query(`SELECT COUNT(*) FROM media`)
	s2.Commit()
	if rows[0][0].Int64() != 0 {
		t.Fatal("host row survived coordinated abort")
	}
}

func TestXADLFMCrashResolvedFromEngineLog(t *testing.T) {
	// The DLFM crashes after the host branch committed: the resolution
	// daemon finds the sub-transaction indoubt, finds no dl_outcome row
	// (XA branches do not write one), follows dl_xa to the engine log,
	// and commits.
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.PrepareGlobal(); err != nil {
		t.Fatal(err)
	}
	// DLFM crashes between the global prepare and the commit cascade.
	if err := st.dlfm["fs1"].Crash(); err != nil {
		t.Fatal(err)
	}
	// The coordinator commits; the cascade to the (restarted) DLFM goes
	// over a dead session connection and is lost.
	if err := s.CommitGlobal(); err != nil {
		t.Fatal(err)
	}
	// The resolution daemon settles it from the engine log.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n, _ := st.db.ResolveIndoubts(); n > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("XA sub-transaction never resolved to commit")
	}
}
