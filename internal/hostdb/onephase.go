package hostdb

import (
	"fmt"
	"time"

	"repro/internal/rpc"
)

// The single-participant one-phase commit (Config.OnePhase): when exactly
// one DLFM is enlisted, the commit decision is delegated to it — the host
// hardens its own branch, sends one OnePhaseCommitReq (the participant's
// prepare and commit fused into a single forced write), and follows the
// participant's answer. Half the network round trips and half the forced
// log writes of 2PC, at the price of an ambiguity window when the reply is
// lost: the request is deliberately not idempotent (re-sending it on a
// fresh connection would be indistinguishable from a new empty
// transaction), so a lost reply is resolved by querying the participant's
// durable transaction state instead.
func (s *Session) commitOnePhase(p *participant) error {
	db := s.db
	txn := s.txn
	start := time.Now()
	root := db.tracer.StartRoot(txn, "host", "commit")
	committed := false
	defer func() {
		root.End()
		if committed {
			db.observeAttribution(txn)
		}
	}()
	if root != nil {
		s.conn.SetSpanCtx(root.Ctx())
	}
	db.tracer.Emit(txn, "host", "1pc_delegate", p.server)

	// Harden the host branch first: the participant is the commit point,
	// so by the time it decides, the host must be able to follow either
	// way. No dl_outcome row — the participant's local state IS the
	// decision record. A host side that only read has nothing to harden.
	hardened := false
	if s.conn.InTxn() {
		if err := s.conn.PrepareTxn(); err != nil {
			return s.abortCommit(txn, fmt.Errorf("%w: host prepare: %v", ErrTxnRolledBack, err))
		}
		hardened = true
	}

	sp := db.tracer.StartSpan(root.Ctx(), "host", "rpc:OnePhaseCommit").Attr("server", p.server)
	resp, err := p.client.CallCtx(sp.Ctx(), rpc.OnePhaseCommitReq{Txn: txn})
	sp.End()

	outcome := ""
	cause := ""
	switch {
	case err == nil && resp.OK():
		outcome = "commit"
	case err == nil:
		outcome = "abort"
		cause = fmt.Sprintf("%s: %s", resp.Code, resp.Msg)
	default:
		// Lost request or lost reply: ask the participant's durable state.
		db.noteDLFMFailure(p.server, err)
		s.dropPart(p.server)
		outcome, err = db.queryOutcome1PC(p.server, txn)
		if err != nil {
			// Participant unreachable: park the query for the resolution
			// daemon and heuristically roll the host branch back so the
			// session stays usable. If the participant did commit, this is
			// heuristic damage — the price of the fused protocol, taken
			// only after the retries above are exhausted.
			db.parkIndoubt(txn, p.server, "query")
			if hardened {
				s.conn.RollbackPrepared() //nolint:errcheck
			}
			s.finishTxn()
			db.stats.Aborts.Add(1)
			return fmt.Errorf("%w: one-phase commit of txn %d unresolved (%v); host branch heuristically rolled back, parked for resolution", ErrTxnRolledBack, txn, err)
		}
		cause = "resolved by outcome query"
	}

	if outcome == "commit" {
		if hardened {
			if err := s.conn.CommitPrepared(); err != nil {
				return fmt.Errorf("hostdb: txn %d committed at %s but host branch failed to land: %v", txn, p.server, err)
			}
		}
		committed = true
		db.stats.Commits.Add(1)
		db.stats.OnePhaseCommits.Add(1)
		db.commitHist.ObserveEx(time.Since(start), txn)
		db.tracer.Emit(txn, "host", "1pc_done", p.server)
		s.finishTxn()
		return nil
	}
	if hardened {
		s.conn.RollbackPrepared() //nolint:errcheck
	}
	s.finishTxn()
	db.stats.Aborts.Add(1)
	return fmt.Errorf("%w: one-phase commit of txn %d refused at %s: %s", ErrTxnRolledBack, txn, p.server, cause)
}
