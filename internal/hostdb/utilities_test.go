package hostdb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/value"
)

// TestResolveIndoubtsSkipsLiveCoordinator pins the liveness rule: a DLFM
// sub-transaction sitting in the prepared window of a session that is still
// alive is NOT in doubt, and resolution must leave it alone — presuming
// abort there races the coordinator's own commit (the failover path runs
// ResolveIndoubts against healthy DLFMs mid-traffic).
func TestResolveIndoubtsSkipsLiveCoordinator(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/v/live.mpg", "alice", "x")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 'live', ?)`,
		value.Str(URL("fs1", "/v/live.mpg")))

	// Drive phase 1 by hand: the DLFM now holds a prepared transaction while
	// the live session has not hardened a decision (no dl_outcome row).
	txn := s.txn
	resp, err := s.parts["fs1"].client.Call(rpc.PrepareReq{Txn: txn})
	if err != nil || !resp.OK() {
		t.Fatalf("prepare: %v %s %s", err, resp.Code, resp.Msg)
	}

	if n, err := st.db.ResolveIndoubts(); err != nil {
		t.Fatal(err)
	} else if n != 0 {
		t.Fatalf("resolution settled %d transactions out from under a live coordinator", n)
	}
	probe := rpc.LocalPair(st.dlfm["fs1"])
	resp, err = probe.Call(rpc.ListIndoubtReq{})
	if err != nil || !resp.OK() {
		t.Fatalf("ListIndoubt: %v %s", err, resp.Msg)
	}
	still := false
	for _, id := range resp.Txns {
		if id == txn {
			still = true
		}
	}
	if !still {
		t.Fatalf("prepared transaction %d vanished during live resolution (indoubts %v)", txn, resp.Txns)
	}

	// Once the session finishes, the id is fair game again: the rollback
	// aborts the branch and nothing stays prepared.
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	resp, err = probe.Call(rpc.ListIndoubtReq{})
	if err != nil || !resp.OK() {
		t.Fatalf("ListIndoubt: %v %s", err, resp.Msg)
	}
	if len(resp.Txns) != 0 {
		t.Fatalf("indoubts %v remain after the coordinator finished", resp.Txns)
	}
	if st.linkedOnDLFM("fs1", "/v/live.mpg") {
		t.Fatal("rolled-back link still visible")
	}
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(true, false)
	st.createFile("fs1", "/a", "alice", "content-a")
	st.createFile("fs1", "/b", "alice", "content-b")

	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 'keep', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	backupID, err := st.db.Backup()
	if err != nil {
		t.Fatal(err)
	}
	// The backup waited for the archive copy.
	if !st.arch["fs1"].Exists("/a", linkRecID(t, st, "/a")) {
		t.Fatal("archive copy of /a missing after backup")
	}

	// Post-backup activity: delete row 1 (unlink /a), add row 2 (link /b).
	st.mustExec(s, `DELETE FROM media WHERE id = 1`)
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (2, 'new', ?)`, value.Str(URL("fs1", "/b")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") || !st.linkedOnDLFM("fs1", "/b") {
		t.Fatal("precondition wrong")
	}

	// Restore to the backup.
	if err := st.db.Restore(backupID); err != nil {
		t.Fatal(err)
	}
	// Host sees the old row; DLFM re-linked /a and dropped /b.
	s2 := st.db.Session()
	defer s2.Close()
	rows, err := s2.Query(`SELECT id, title FROM media ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	s2.Commit()
	if len(rows) != 1 || rows[0][0].Int64() != 1 || rows[0][1].Text() != "keep" {
		t.Fatalf("restored rows = %v", rows)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("/a not re-linked after restore")
	}
	if st.linkedOnDLFM("fs1", "/b") {
		t.Fatal("/b still linked after restore")
	}
}

// linkRecID digs the hidden recid out of the host table (test helper).
func linkRecID(t *testing.T, st *stack, path string) int64 {
	t.Helper()
	c := st.db.Engine().Connect()
	rows, err := c.Query(`SELECT clip__recid FROM media WHERE clip = ?`, value.Str(URL("fs1", path)))
	if err != nil {
		t.Fatal(err)
	}
	c.Commit()
	if len(rows) == 0 || rows[0][0].IsNull() {
		t.Fatalf("no recid for %s", path)
	}
	return rows[0][0].Int64()
}

func TestRestoreRetrievesLostFile(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(true, false)
	st.createFile("fs1", "/a", "alice", "precious")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	backupID, err := st.db.Backup()
	if err != nil {
		t.Fatal(err)
	}
	// Disaster: the file system loses the file.
	st.fs["fs1"].Chmod("/a", false)
	st.fs["fs1"].Delete("/a")

	if err := st.db.Restore(backupID); err != nil {
		t.Fatal(err)
	}
	content, err := st.fs["fs1"].Read("/a")
	if err != nil || string(content) != "precious" {
		t.Fatalf("retrieved = %q, %v", content, err)
	}
}

func TestReconcileNullsUnresolvable(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the world: the DLFM loses its entry AND the file vanishes,
	// so reconcile cannot repair the reference.
	conn := st.dlfm["fs1"].DB().Connect()
	if _, err := conn.Exec(`DELETE FROM dlfm_file`); err != nil {
		t.Fatal(err)
	}
	if err := conn.Commit(); err != nil {
		t.Fatal(err)
	}
	st.fs["fs1"].Delete("/a")

	nulled, err := st.db.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if nulled != 1 {
		t.Fatalf("nulled = %d, want 1", nulled)
	}
	rows, _ := s.Query(`SELECT clip FROM media WHERE id = 1`)
	s.Commit()
	if !rows[0][0].IsNull() {
		t.Fatalf("clip = %v, want NULL", rows[0][0])
	}
}

func TestReconcileRelinksWhenFileExists(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// DLFM loses the entry but the file is still there.
	conn := st.dlfm["fs1"].DB().Connect()
	if _, err := conn.Exec(`DELETE FROM dlfm_file`); err != nil {
		t.Fatal(err)
	}
	if err := conn.Commit(); err != nil {
		t.Fatal(err)
	}
	nulled, err := st.db.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if nulled != 0 {
		t.Fatalf("nulled = %d, want 0", nulled)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("reconcile did not re-link /a")
	}
}

func TestDropTableDeletesGroups(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	const n = 8
	s := st.db.Session()
	defer s.Close()
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/f%d", i)
		st.createFile("fs1", path, "alice", "x")
		st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (?, 't', ?)`,
			value.Int(int64(i)), value.Str(URL("fs1", path)))
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := st.db.DropTable("media"); err != nil {
		t.Fatal(err)
	}
	// The host table is gone immediately.
	if _, err := s.Query(`SELECT COUNT(*) FROM media`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	// The Delete Group daemon unlinks asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !st.linkedOnDLFM("fs1", "/f0") && !st.linkedOnDLFM("fs1", fmt.Sprintf("/f%d", n-1)) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < n; i++ {
		if st.linkedOnDLFM("fs1", fmt.Sprintf("/f%d", i)) {
			t.Fatalf("/f%d still linked after drop table", i)
		}
	}
	// Dropping a table with no DATALINK columns also works.
	if err := st.db.CreateTable(`CREATE TABLE plain (x BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if err := st.db.DropTable("plain"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBulkInsertBatched(t *testing.T) {
	st := newStack(t, []string{"fs1"}, func(h *Config, _ map[string]*core.Config) {
		h.LoadBatchN = 10
	})
	st.mediaTable(false, false)
	const n = 35
	rows := make([]value.Row, n)
	cols := []string{"id", "title", "clip"}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/bulk%03d", i)
		st.createFile("fs1", path, "alice", "x")
		rows[i] = value.Row{value.Int(int64(i)), value.Str("t"), value.Str(URL("fs1", path))}
	}
	loaded, err := st.db.Load("media", cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != n {
		t.Fatalf("loaded = %d, want %d", loaded, n)
	}
	// The DLFM saw a batched transaction: intermediate local commits
	// happened every 10 operations.
	if st.dlfm["fs1"].Stats().BatchCommits < 3 {
		t.Fatalf("BatchCommits = %d, want >= 3", st.dlfm["fs1"].Stats().BatchCommits)
	}
	for i := 0; i < n; i++ {
		if !st.linkedOnDLFM("fs1", fmt.Sprintf("/bulk%03d", i)) {
			t.Fatalf("/bulk%03d not linked", i)
		}
	}
	s := st.db.Session()
	defer s.Close()
	got, err := s.Query(`SELECT COUNT(*) FROM media`)
	if err != nil {
		t.Fatal(err)
	}
	s.Commit()
	if got[0][0].Int64() != n {
		t.Fatalf("host rows = %d", got[0][0].Int64())
	}
}

func TestLoadAbortOnBadRow(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/good", "alice", "x")
	rows := []value.Row{
		{value.Int(1), value.Str("t"), value.Str(URL("fs1", "/good"))},
		{value.Int(2), value.Str("t"), value.Str(URL("fs1", "/missing"))},
	}
	if _, err := st.db.Load("media", []string{"id", "title", "clip"}, rows); err == nil {
		t.Fatal("load with missing file succeeded")
	}
	// Everything rolled back, including the already-linked first row.
	if st.linkedOnDLFM("fs1", "/good") {
		t.Fatal("partial load left a link behind")
	}
}
