package hostdb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/paxoscommit"
	"repro/internal/rpc"
	"repro/internal/value"
)

// Paxos Commit as the host's commit protocol (Gray & Lamport). The 2PC
// decision point — the coordinator's forced write of the outcome — is the
// protocol's blocking hazard: until the coordinator (or its recovered
// incarnation) speaks again, every prepared participant holds its locks.
// Under CommitProtocol "paxos" the decision is instead *chosen* by a
// majority of 2F+1 acceptors: the session's ballot-0 accept round writes
// the registrar instance (the participant list) and one "prepared"
// instance per participant, and the outcome from then on is a pure
// function of acceptor state. Any participant's learner daemon — or a
// host session recovering from its own interrupted commit — computes it
// without the coordinator, so no single failure wedges a transaction.

// fpLeaderCrash simulates the coordinator dying inside its commit. Detail
// "pre" fires before the accept round (nothing chosen yet — recovery must
// abort); "post" fires after the quorum chose commit but before any
// phase-2 message (participants must learn the commit from the acceptors).
// An arming without Match can hit either site.
var fpLeaderCrash = fault.P("hostdb.paxos.leader_crash")

// hostPart is the instance name of the host database's own branch in the
// transaction's Paxos bundle: the host is a participant too (its branch is
// hardened with PrepareTxn before the accept round), so the outcome
// function covers it like any DLFM.
const hostPart = "@host"

// hostLearnerID is the host's learner identity; DLFM learner daemons get
// IDs 2..len (wired by the stack), all sharing paxoscommit.DefaultStride.
const hostLearnerID = 1

// acceptorEntry is one registered acceptor endpoint, dialed lazily and
// shared by every session and daemon; a transport error drops the cached
// client so the next call re-dials.
type acceptorEntry struct {
	name string
	dial Dialer

	mu     sync.Mutex
	client *rpc.Client
}

// Call implements paxoscommit.Caller.
func (e *acceptorEntry) Call(req any) (rpc.Response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.client == nil {
		c, err := e.dial()
		if err != nil {
			return rpc.Response{}, err
		}
		e.client = c
	}
	resp, err := e.client.Call(req)
	if err != nil {
		e.client.Close()
		e.client = nil
	}
	return resp, err
}

// RegisterAcceptor makes a Paxos Commit acceptor reachable. Register an
// odd number (2F+1) before the first paxos commit; the set must be the
// same for every host and DLFM learner of the deployment.
func (db *DB) RegisterAcceptor(name string, dial Dialer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.acceptors = append(db.acceptors, &acceptorEntry{name: name, dial: dial})
}

// acceptorCallers snapshots the acceptor set in registration order.
func (db *DB) acceptorCallers() []paxoscommit.Caller {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]paxoscommit.Caller, len(db.acceptors))
	for i, e := range db.acceptors {
		out[i] = e
	}
	return out
}

// protocol resolves the effective commit protocol: "paxos" needs both the
// knob and a registered acceptor set.
func (db *DB) protocol() string {
	if db.cfg.CommitProtocol == "paxos" && len(db.acceptorCallers()) > 0 {
		return "paxos"
	}
	return "2pc"
}

// learner builds the host's recovery learner over the registered acceptors.
func (db *DB) learner() *paxoscommit.Learner {
	return &paxoscommit.Learner{
		Acceptors: db.acceptorCallers(),
		ID:        hostLearnerID,
		Stride:    paxoscommit.DefaultStride,
	}
}

// LearnOutcome determines txn's outcome ("commit"/"abort") from the
// acceptors alone — the entry point indoubt resolution and the DLFM-side
// learner closures use.
func (db *DB) LearnOutcome(txn int64) (string, error) {
	return db.learner().Outcome(txn)
}

// commitPaxos replaces 2PC's decision write with the acceptor quorum. The
// session arrives with every writer prepared; the host's own branch is
// hardened (PrepareTxn) with the outcome row riding inside it, then the
// ballot-0 accept round chooses the commit. Only after the quorum is the
// branch committed and phase 2 fanned out.
func (s *Session) commitPaxos(root, p1 *obs.SpanHandle, writers []*participant, txn int64, start time.Time, committed *bool) error {
	db := s.db
	acceptors := db.acceptorCallers()
	parts := make([]string, 0, len(writers)+1)
	for _, p := range writers {
		parts = append(parts, p.server)
	}
	parts = append(parts, hostPart)

	// The outcome row rides inside the host branch: it becomes durable
	// exactly when the branch commits, which happens only after the
	// acceptors chose commit — so dl_outcome can never contradict them.
	var err error
	if db.cfg.PresumedCommit {
		_, err = s.conn.Exec(`UPDATE dl_outcome SET outcome = 'C' WHERE txnid = ?`, value.Int(txn))
	} else {
		_, err = s.conn.Exec(`INSERT INTO dl_outcome (txnid, outcome) VALUES (?, 'C')`, value.Int(txn))
	}
	if err != nil {
		return s.abortCommit(txn, fmt.Errorf("%w: %v", ErrTxnRolledBack, err))
	}
	if err := s.conn.PrepareTxn(); err != nil {
		return s.abortCommit(txn, fmt.Errorf("%w: host prepare: %v", ErrTxnRolledBack, err))
	}

	if err := fpLeaderCrash.FireDetail("pre"); err != nil {
		// Crashed before the accept round: nothing is chosen, recovery
		// learns abort. No phase-2 traffic — the DLFMs' learner daemons
		// find the abort themselves (the non-blocking property under test).
		return s.paxosRecover(root, writers, txn, err, false)
	}

	sp := db.tracer.StartSpan(root.Ctx(), "host", "paxos_accept")
	acceptErr := paxoscommit.Commit(acceptors, txn, parts)
	sp.End()
	p1.End() // Gray & Lamport's phase 1 ends at the stable write — here, the quorum

	switch {
	case acceptErr == nil:
	case errors.Is(acceptErr, paxoscommit.ErrPreempted):
		// A recovery learner beat the leader to the instances (a slow
		// commit raced a participant's learner daemon). The outcome is
		// whatever it chose; learn it and converge.
		return s.paxosRecover(root, writers, txn, acceptErr, true)
	default:
		return s.paxosNoQuorum(txn, acceptErr)
	}

	// Chosen. The host branch lands; failure here means the engine itself
	// broke — the branch stays prepared and the decision is still safe at
	// the acceptors.
	if err := s.conn.CommitPrepared(); err != nil {
		db.parkIndoubt(txn, "", "learn")
		s.abandonParts()
		s.finishTxn()
		return fmt.Errorf("hostdb: txn %d chosen commit but host branch failed to land: %v", txn, err)
	}
	db.tracer.Emit(txn, "host", "paxos_decision_commit", "")

	if err := fpLeaderCrash.FireDetail("post"); err != nil {
		// Crashed after the decision but before phase 2 — 2PC's wedging
		// window. Here the commit is already learnable from the acceptors,
		// so the participants release their locks without us.
		db.stats.PaxosCommits.Add(1)
		s.abandonParts()
		s.finishTxn()
		return fmt.Errorf("%w: commit of txn %d interrupted before phase 2 (outcome chosen by acceptors): %v", ErrCommitUnacked, txn, err)
	}

	allAcked := s.phase2Fanout(root, writers, txn, true)
	if allAcked {
		if db.cfg.PresumedCommit {
			db.gcOutcome(txn)
		}
		// Every participant applied the commit; the acceptors' state is no
		// longer needed. (Skipped when an ack is missing: that participant
		// is still prepared and its learner must find the instances.)
		paxoscommit.Forget(acceptors, txn)
	}
	*committed = true
	db.stats.Commits.Add(1)
	db.stats.PaxosCommits.Add(1)
	db.commitHist.ObserveEx(time.Since(start), txn)
	db.tracer.Emit(txn, "host", "2pc_done", "paxos")
	s.finishTxn()
	return nil
}

// paxosRecover finishes an interrupted paxos commit the way a restarted
// coordinator would: learn the outcome from the acceptors and apply it to
// the prepared host branch. With sendPhase2 the decision is also fanned
// out; without it (simulated leader crash) the participants are left to
// their learner daemons.
func (s *Session) paxosRecover(root *obs.SpanHandle, writers []*participant, txn int64, cause error, sendPhase2 bool) error {
	db := s.db
	out, err := db.LearnOutcome(txn)
	if err != nil {
		return s.paxosNoQuorum(txn, err)
	}
	db.stats.PaxosRecoveries.Add(1)
	db.tracer.Emit(txn, "host", "paxos_recovered", out)

	if out == paxoscommit.OutcomeCommit {
		if err := s.conn.CommitPrepared(); err != nil {
			db.parkIndoubt(txn, "", "learn")
			s.abandonParts()
			s.finishTxn()
			return fmt.Errorf("hostdb: txn %d recovered as commit but host branch failed to land: %v", txn, err)
		}
		db.stats.PaxosCommits.Add(1)
		if !sendPhase2 {
			s.abandonParts()
			s.finishTxn()
			return fmt.Errorf("%w: commit of txn %d interrupted before phase 2 (outcome chosen by acceptors): %v", ErrCommitUnacked, txn, cause)
		}
		s.phase2Fanout(root, writers, txn, true)
		db.stats.Commits.Add(1)
		db.tracer.Emit(txn, "host", "2pc_done", "paxos_recovered")
		s.finishTxn()
		return nil
	}

	// Aborted (the usual case for a "pre" crash: nothing was chosen, so
	// recovery aborted by fiat).
	s.conn.RollbackPrepared() //nolint:errcheck
	if sendPhase2 {
		s.phase2Fanout(root, writers, txn, false)
	} else {
		s.abandonParts()
	}
	s.finishTxn()
	db.stats.Aborts.Add(1)
	return fmt.Errorf("%w: txn %d aborted by paxos recovery: %v", ErrTxnRolledBack, txn, cause)
}

// paxosNoQuorum handles an unreachable acceptor majority: the outcome is
// genuinely unknowable right now. The transaction is parked for the
// resolution daemon (which re-learns once acceptors return) and the host
// branch is heuristically rolled back so the session stays usable — the
// classic heuristic hazard, accepted because the alternative wedges the
// session on an indoubt branch.
func (s *Session) paxosNoQuorum(txn int64, cause error) error {
	s.db.parkIndoubt(txn, "", "learn")
	s.abandonParts()
	s.conn.RollbackPrepared() //nolint:errcheck
	s.finishTxn()
	s.db.stats.Aborts.Add(1)
	return fmt.Errorf("%w: txn %d outcome unknown (%v); host branch heuristically rolled back, parked for resolution", ErrTxnRolledBack, txn, cause)
}
