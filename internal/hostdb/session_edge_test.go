package hostdb

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/value"
)

func TestHostCrashRecoversAndResolvesIndoubts(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")

	s := st.db.Session()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Host crashes; its engine recovers from the log.
	if err := st.db.Crash(); err != nil {
		t.Fatal(err)
	}
	s2 := st.db.Session()
	defer s2.Close()
	rows, err := s2.Query(`SELECT title FROM media WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	s2.Commit()
	if len(rows) != 1 || rows[0][0].Text() != "t" {
		t.Fatalf("rows after host crash = %v", rows)
	}
	// Nothing indoubt: resolution is a no-op.
	n, err := st.db.ResolveIndoubts()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("resolved = %d, want 0", n)
	}
	// The datalink registry survived too: new links still work.
	st.createFile("fs1", "/b", "alice", "y")
	st.mustExec(s2, `INSERT INTO media (id, title, clip) VALUES (2, 't2', ?)`, value.Str(URL("fs1", "/b")))
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/b") {
		t.Fatal("link after host crash failed")
	}
}

func TestSessionTxnIDAndDeadState(t *testing.T) {
	st := newStack(t, []string{"fs1"}, func(h *Config, d map[string]*core.Config) {
		h.DB.LockTimeout = 60 * time.Millisecond
	})
	st.mediaTable(false, false)
	s1 := st.db.Session()
	s2 := st.db.Session()
	defer s1.Close()
	defer s2.Close()

	if s1.TxnID() != 0 {
		t.Fatal("fresh session has a txn id")
	}
	st.mustExec(s1, `INSERT INTO media (id, title, clip) VALUES (1, 't', NULL)`)
	if s1.TxnID() == 0 {
		t.Fatal("no txn id after a statement")
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}

	// s1 holds a row lock; s2 times out and is force-rolled-back.
	if _, err := s1.Exec(`UPDATE media SET title = 'x' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	_, err := s2.Exec(`UPDATE media SET title = 'y' WHERE id = 1`)
	if !errors.Is(err, ErrTxnRolledBack) {
		t.Fatalf("err = %v, want ErrTxnRolledBack", err)
	}
	// Dead session refuses more work until Rollback acknowledges.
	if _, err := s2.Exec(`INSERT INTO media (id, title, clip) VALUES (9, 'z', NULL)`); !errors.Is(err, ErrTxnRolledBack) {
		t.Fatalf("statement on dead session: %v", err)
	}
	if _, err := s2.Query(`SELECT * FROM media`); !errors.Is(err, ErrTxnRolledBack) {
		t.Fatalf("query on dead session: %v", err)
	}
	if err := s2.Commit(); !errors.Is(err, ErrTxnRolledBack) {
		t.Fatalf("commit on dead session: %v", err)
	}
	if err := s2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	// s2 is usable again.
	st.mustExec(s2, `UPDATE media SET title = 'y' WHERE id = 1`)
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRollbackWithoutTxn(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	s := st.db.Session()
	defer s.Close()
	if err := s.Commit(); !errors.Is(err, engine.ErrNoTxn) {
		t.Fatalf("Commit = %v", err)
	}
	if err := s.Rollback(); !errors.Is(err, engine.ErrNoTxn) {
		t.Fatalf("Rollback = %v", err)
	}
}

func TestExecParseAndShapeErrors(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	s := st.db.Session()
	defer s.Close()
	if _, err := s.Exec(`garbage sql`); err == nil {
		t.Error("garbage accepted")
	}
	// INSERT into a DATALINK table must name its columns.
	if _, err := s.Exec(`INSERT INTO media VALUES (1, 't', NULL)`); err == nil {
		t.Error("column-less DATALINK insert accepted")
	}
	// Malformed DATALINK URL is a statement error.
	if _, err := s.Exec(`INSERT INTO media (id, title, clip) VALUES (1, 't', 'not-a-url')`); !errors.Is(err, ErrStatement) {
		t.Errorf("bad url: %v", err)
	}
	// DATALINK value must be a literal or parameter.
	if _, err := s.Exec(`INSERT INTO media (id, title, clip) VALUES (1, 't', title)`); err == nil {
		t.Error("column-expression DATALINK accepted")
	}
	// Query requires SELECT.
	if _, err := s.Query(`DELETE FROM media`); err == nil {
		t.Error("Query accepted DELETE")
	}
	s.Rollback()
}

func TestUpdateAndDeleteWithoutDatalinkTouch(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Updating a non-DATALINK column leaves the link alone.
	st.mustExec(s, `UPDATE media SET title = 'renamed' WHERE id = 1`)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("plain update broke the link")
	}
	// Plain tables pass straight through.
	if err := st.db.CreateTable(`CREATE TABLE plain (x BIGINT)`); err != nil {
		t.Fatal(err)
	}
	st.mustExec(s, `INSERT INTO plain VALUES (1)`)
	st.mustExec(s, `UPDATE plain SET x = 2 WHERE x = 1`)
	st.mustExec(s, `DELETE FROM plain WHERE x = 2`)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateSetNullUnlinksOnly(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st.mustExec(s, `UPDATE media SET clip = NULL WHERE id = 1`)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("/a still linked after SET NULL")
	}
	rows, _ := s.Query(`SELECT clip FROM media WHERE id = 1`)
	s.Commit()
	if !rows[0][0].IsNull() {
		t.Fatalf("clip = %v", rows[0][0])
	}
}

func TestUpdateMatchingZeroRows(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	s := st.db.Session()
	defer s.Close()
	st.createFile("fs1", "/new", "alice", "x")
	n, err := s.Exec(`UPDATE media SET clip = ? WHERE id = 42`, value.Str(URL("fs1", "/new")))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("affected = %d", n)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// No phantom link was left behind.
	if st.linkedOnDLFM("fs1", "/new") {
		t.Fatal("zero-row update linked a file")
	}
}

func TestDeleteWithParamsInWhere(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(false, false)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	n, err := s.Exec(`DELETE FROM media WHERE id = ? AND title = ?`, value.Int(1), value.Str("t"))
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.linkedOnDLFM("fs1", "/a") {
		t.Fatal("param-where delete left the link")
	}
}

func TestCreateTableValidation(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	if err := st.db.CreateTable(`DROP TABLE x`); err == nil {
		t.Error("non-CREATE DDL accepted")
	}
	if err := st.db.CreateTable(`garbage`); err == nil {
		t.Error("garbage DDL accepted")
	}
	if err := st.db.CreateTable(
		`CREATE TABLE t (a BIGINT)`, DatalinkCol{Name: "missing"},
	); err == nil {
		t.Error("DATALINK column not in DDL accepted")
	}
	if err := st.db.CreateTable(
		`CREATE TABLE t (a BIGINT)`, DatalinkCol{Name: "a"},
	); err == nil {
		t.Error("non-VARCHAR DATALINK column accepted")
	}
}

func TestMintTokenDisabled(t *testing.T) {
	st := newStack(t, []string{"fs1"}, func(h *Config, _ map[string]*core.Config) {
		h.TokenSecret = nil
	})
	if tok := st.db.MintToken("/a"); tok != "" {
		t.Fatalf("token minted with no secret: %q", tok)
	}
	// SELECT of full-control values returns raw URLs.
	st.mediaTable(true, true)
	st.createFile("fs1", "/a", "alice", "x")
	s := st.db.Session()
	defer s.Close()
	st.mustExec(s, `INSERT INTO media (id, title, clip) VALUES (1, 't', ?)`, value.Str(URL("fs1", "/a")))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, _ := s.Query(`SELECT clip FROM media WHERE id = 1`)
	s.Commit()
	if rows[0][0].Text() != URL("fs1", "/a") {
		t.Fatalf("clip = %q, want raw URL", rows[0][0].Text())
	}
}

func TestRestoreUnknownBackup(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	if err := st.db.Restore(99); err == nil {
		t.Fatal("restore of unknown backup succeeded")
	}
}

func TestAggregateQueriesPassThrough(t *testing.T) {
	st := newStack(t, []string{"fs1"})
	st.mediaTable(true, true)
	s := st.db.Session()
	defer s.Close()
	rows, err := s.Query(`SELECT COUNT(*) FROM media`)
	if err != nil || rows[0][0].Int64() != 0 {
		t.Fatalf("count = %v, %v", rows, err)
	}
	s.Commit()
}
