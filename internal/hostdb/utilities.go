package hostdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/rpc"
	"repro/internal/value"
)

// backupImage is a quiesced dump of the host database's user tables plus
// the recovery-id watermark and the file servers involved — the extra
// information the paper says the backup utility keeps in the image
// ("which file servers and file groups were involved in the backup").
type backupImage struct {
	id      int64
	recID   int64
	servers []string
	tables  map[string]tableDump
}

type tableDump struct {
	cols    []catalog.Column
	indexes []*catalog.IndexSchema
	rows    []value.Row
}

// Backup takes a coordinated backup: it picks the recovery-id watermark,
// asks every DLFM to flush pending archive copies up to it (WaitArchive),
// snapshots the host tables, registers the backup with each DLFM for
// retention, and records it locally. The database is assumed quiesced, as
// the paper's backup utility assumes.
func (db *DB) Backup() (int64, error) {
	watermark := db.NextRecID()
	id := db.bkSeq.Add(1)

	img := &backupImage{id: id, recID: watermark, tables: make(map[string]tableDump)}
	for _, server := range db.Servers() {
		dial, err := db.dialer(server)
		if err != nil {
			return 0, err
		}
		client, err := dial()
		if err != nil {
			return 0, fmt.Errorf("hostdb: backup: DLFM %s unreachable: %w", server, err)
		}
		// "The Backup utility on the host database side makes sure that
		// all the files since last backup are archived to the archive
		// server before declaring that backup is successful."
		resp, callErr := client.Call(rpc.WaitArchiveReq{RecID: watermark})
		if callErr == nil && resp.OK() {
			resp, callErr = client.Call(rpc.RegisterBackupReq{BackupID: id, RecID: watermark})
		}
		client.Close()
		if callErr != nil {
			return 0, fmt.Errorf("hostdb: backup at %s: %w", server, callErr)
		}
		if !resp.OK() {
			return 0, fmt.Errorf("hostdb: backup at %s: %s: %s", server, resp.Code, resp.Msg)
		}
		img.servers = append(img.servers, server)
	}

	// Snapshot every user table (system tables are rebuilt by restore).
	for _, name := range db.eng.Catalog().TableNames() {
		if strings.HasPrefix(name, "dl_") {
			continue
		}
		meta, err := db.eng.Catalog().Table(name)
		if err != nil {
			continue
		}
		rows, err := db.eng.DumpTable(name)
		if err != nil {
			return 0, err
		}
		sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })
		img.tables[name] = tableDump{
			cols:    append([]catalog.Column(nil), meta.Schema.Cols...),
			indexes: append([]*catalog.IndexSchema(nil), meta.Indexes...),
			rows:    rows,
		}
	}
	db.mu.Lock()
	db.backups[id] = img
	db.mu.Unlock()

	c := db.eng.Connect()
	if _, err := c.Exec(`INSERT INTO dl_backups (backupid, recid, ts) VALUES (?, ?, ?)`,
		value.Int(id), value.Int(watermark), value.Int(time.Now().UnixNano())); err != nil {
		c.Rollback()
		return 0, err
	}
	if err := c.Commit(); err != nil {
		return 0, err
	}
	return id, nil
}

func rowLess(a, b value.Row) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// Restore brings the host database back to the given backup and tells
// every involved DLFM to reconcile its metadata to the backup's recovery-
// id watermark (retrieving missing files from the archive server). The
// database must be quiesced.
func (db *DB) Restore(backupID int64) error {
	db.mu.Lock()
	img := db.backups[backupID]
	db.mu.Unlock()
	if img == nil {
		return fmt.Errorf("hostdb: no backup image %d", backupID)
	}

	c := db.eng.Connect()
	// Drop every current user table, then rebuild from the image.
	for _, name := range db.eng.Catalog().TableNames() {
		if strings.HasPrefix(name, "dl_") {
			continue
		}
		if _, err := c.Exec("DROP TABLE " + name); err != nil {
			return err
		}
	}
	for name, dump := range img.tables {
		ddl := "CREATE TABLE " + name + " ("
		for i, col := range dump.cols {
			if i > 0 {
				ddl += ", "
			}
			ddl += col.Name + " " + typeName(col.Type)
			if col.NotNull {
				ddl += " NOT NULL"
			}
		}
		ddl += ")"
		if _, err := c.Exec(ddl); err != nil {
			return err
		}
		for _, ix := range dump.indexes {
			stmt := "CREATE "
			if ix.Unique {
				stmt += "UNIQUE "
			}
			stmt += "INDEX " + ix.Name + " ON " + name + " (" + strings.Join(ix.Cols, ", ") + ")"
			if _, err := c.Exec(stmt); err != nil {
				return err
			}
		}
		if len(dump.rows) > 0 {
			marks := strings.Repeat(", ?", len(dump.cols))[2:]
			ins := "INSERT INTO " + name + " VALUES (" + marks + ")"
			for _, row := range dump.rows {
				if _, err := c.Exec(ins, row...); err != nil {
					c.Rollback()
					return err
				}
			}
			if err := c.Commit(); err != nil {
				return err
			}
		}
	}

	// Tell every DLFM involved in the backup to roll its metadata to the
	// watermark (Section 3.4).
	for _, server := range img.servers {
		dial, err := db.dialer(server)
		if err != nil {
			return err
		}
		client, err := dial()
		if err != nil {
			return fmt.Errorf("hostdb: restore: DLFM %s unreachable: %w", server, err)
		}
		resp, callErr := client.Call(rpc.RestoreToReq{RecID: img.recID})
		client.Close()
		if callErr != nil {
			return fmt.Errorf("hostdb: restore at %s: %w", server, callErr)
		}
		if !resp.OK() {
			return fmt.Errorf("hostdb: restore at %s: %s: %s", server, resp.Code, resp.Msg)
		}
	}
	return nil
}

func typeName(k value.Kind) string {
	switch k {
	case value.KindString:
		return "VARCHAR"
	case value.KindBool:
		return "BOOLEAN"
	default:
		return "BIGINT"
	}
}

// Reconcile synchronizes the host's DATALINK columns with every DLFM after
// a restore (Section 3.4): the host ships its complete view of linked
// files per server; each DLFM repairs what it can and reports the names it
// cannot produce, which the host then nulls out. Returns the number of
// column values nulled.
func (db *DB) Reconcile() (int, error) {
	c := db.eng.Connect()
	// Collect the host view: per server, every (path, recid) pair from
	// every DATALINK column of every table.
	type entry struct {
		table, col string
		url        string
		recID      int64
	}
	byServer := make(map[string][]entry)
	colRows, err := c.Query(`SELECT tbl, col FROM dl_cols`)
	if err != nil {
		return 0, err
	}
	if err := c.Commit(); err != nil {
		return 0, err
	}
	for _, cr := range colRows {
		table, col := cr[0].Text(), cr[1].Text()
		if _, err := db.eng.Catalog().Table(table); err != nil {
			continue // table dropped
		}
		rows, err := c.Query("SELECT " + col + ", " + recidCol(col) + " FROM " + table)
		if err != nil {
			return 0, err
		}
		if err := c.Commit(); err != nil {
			return 0, err
		}
		for _, r := range rows {
			if r[0].IsNull() || r[0].Text() == "" {
				continue
			}
			server, path, err := ParseURL(r[0].Text())
			if err != nil {
				continue
			}
			rec := int64(0)
			if !r[1].IsNull() {
				rec = r[1].Int64()
			}
			// A clustered name resolves to the member owning the path now
			// (Reconcile runs quiesced, so no fence interaction); the stored
			// URL keeps the logical name for the NULL-out match.
			phys := server
			if m := db.Cluster(server); m != nil {
				phys = m.Owner(path)
			}
			byServer[phys] = append(byServer[phys], entry{table: table, col: col, url: URL(server, path), recID: rec})
		}
	}

	nulled := 0
	for server, entries := range byServer {
		dial, err := db.dialer(server)
		if err != nil {
			return nulled, err
		}
		client, err := dial()
		if err != nil {
			return nulled, fmt.Errorf("hostdb: reconcile: DLFM %s unreachable: %w", server, err)
		}
		req := rpc.ReconcileReq{}
		for _, e := range entries {
			_, path, _ := ParseURL(e.url)
			req.Names = append(req.Names, path)
			req.RecIDs = append(req.RecIDs, e.recID)
		}
		resp, callErr := client.Call(req)
		client.Close()
		if callErr != nil {
			return nulled, fmt.Errorf("hostdb: reconcile at %s: %w", server, callErr)
		}
		if !resp.OK() {
			return nulled, fmt.Errorf("hostdb: reconcile at %s: %s: %s", server, resp.Code, resp.Msg)
		}
		// Null out unresolvable references.
		bad := make(map[string]bool, len(resp.Names))
		for _, n := range resp.Names {
			bad[n] = true
		}
		for _, e := range entries {
			_, path, _ := ParseURL(e.url)
			if !bad[path] {
				continue
			}
			if _, err := c.Exec("UPDATE "+e.table+" SET "+e.col+" = NULL, "+recidCol(e.col)+" = NULL WHERE "+e.col+" = ?",
				value.Str(e.url)); err != nil {
				c.Rollback()
				return nulled, err
			}
			nulled++
		}
		if c.InTxn() {
			if err := c.Commit(); err != nil {
				return nulled, err
			}
		}
	}
	return nulled, nil
}

// DropTable drops a host table; its DATALINK columns' file groups are
// deleted at every server that holds files, and the Delete Group daemon
// unlinks the files asynchronously after commit (Section 3.5).
func (db *DB) DropTable(table string) error {
	s := db.Session()
	defer s.Close()
	if err := s.begin(); err != nil {
		return err
	}

	cols, err := db.datalinkCols(s.conn, table)
	if err != nil {
		return err
	}
	for _, col := range cols {
		rows, err := s.conn.Query(`SELECT server FROM dl_grpsrv WHERE grp = ?`, value.Int(col.grp))
		if err != nil {
			s.Rollback()
			return err
		}
		for _, r := range rows {
			p, err := s.part(r[0].Text())
			if err != nil {
				s.Rollback()
				return err
			}
			resp, callErr := p.client.Call(rpc.DeleteGroupReq{Txn: s.txn, Grp: col.grp})
			if callErr != nil || !resp.OK() {
				s.Rollback()
				if callErr != nil {
					return callErr
				}
				return fmt.Errorf("hostdb: delete group %d at %s: %s", col.grp, r[0].Text(), resp.Msg)
			}
		}
		if _, err := s.conn.Exec(`DELETE FROM dl_grpsrv WHERE grp = ?`, value.Int(col.grp)); err != nil {
			s.Rollback()
			return err
		}
	}
	if _, err := s.conn.Exec(`DELETE FROM dl_cols WHERE tbl = ?`, value.Str(table)); err != nil {
		s.Rollback()
		return err
	}
	// DDL autocommits in the engine; do it after the metadata cleanup so a
	// failed cleanup leaves the table intact.
	if _, err := s.conn.Exec("DROP TABLE " + table); err != nil {
		s.Rollback()
		return err
	}
	return s.Commit()
}

// LoadRow is one record for the Load utility.
type LoadRow struct {
	Values value.Row
}

// Load bulk-inserts rows into a DATALINK table using a single host
// transaction whose DLFM sub-transactions run in batched mode: DLFM
// locally commits every LoadBatchN operations to keep the log and lock
// list bounded (Section 4). cols names the target columns (DATALINK
// columns included), in the order of each row's values.
func (db *DB) Load(table string, cols []string, rows []value.Row) (int64, error) {
	s := db.Session()
	defer s.Close()
	if err := s.begin(); err != nil {
		return 0, err
	}

	dlCols, err := db.datalinkCols(s.conn, table)
	if err != nil {
		return 0, err
	}
	byName := make(map[string]dlCol, len(dlCols))
	for _, c := range dlCols {
		byName[c.name] = c
	}

	// Mark every DLFM sub-transaction as batched up front.
	batched := make(map[string]bool)
	ensureBatched := func(server string) (*participant, error) {
		p := s.parts[server]
		if p == nil || !p.begun {
			dial, err := db.dialer(server)
			if err != nil {
				return nil, err
			}
			if p == nil {
				client, err := dial()
				if err != nil {
					return nil, err
				}
				p = &participant{server: server, client: client}
				s.parts[server] = p
			}
			resp, err := p.client.Call(rpc.BeginTxnReq{Txn: s.txn, Batched: true, BatchN: db.cfg.LoadBatchN})
			if err != nil {
				return nil, err
			}
			if !resp.OK() {
				return nil, fmt.Errorf("hostdb: load: begin at %s: %s", server, resp.Msg)
			}
			p.begun = true
			batched[server] = true
		}
		return p, nil
	}

	marks := strings.Repeat(", ?", len(cols))[2:]
	extraMarks := ""
	var dlIdx []int
	for i, c := range cols {
		if _, isDL := byName[c]; isDL {
			dlIdx = append(dlIdx, i)
			extraMarks += ", ?"
		}
	}
	insCols := strings.Join(cols, ", ")
	for _, c := range cols {
		if _, isDL := byName[c]; isDL {
			insCols += ", " + recidCol(c)
		}
	}
	ins := "INSERT INTO " + table + " (" + insCols + ") VALUES (" + marks + extraMarks + ")"

	var loaded int64
	for _, row := range rows {
		if len(row) != len(cols) {
			s.Rollback()
			return loaded, fmt.Errorf("hostdb: load row has %d values for %d columns", len(row), len(cols))
		}
		params := append(value.Row(nil), row...)
		for _, i := range dlIdx {
			col := byName[cols[i]]
			if row[i].IsNull() || row[i].Text() == "" {
				params = append(params, value.Null)
				continue
			}
			server, path, err := ParseURL(row[i].Text())
			if err != nil {
				s.Rollback()
				return loaded, err
			}
			// Route clustered names per path; the release is held across
			// the link call so a cutover cannot fence this row mid-RPC.
			phys, release, err := db.route(server, path)
			if err != nil {
				s.Rollback()
				return loaded, err
			}
			p, err := ensureBatched(phys)
			if err != nil {
				release()
				s.Rollback()
				return loaded, err
			}
			if err := s.ensureGroup(p, col); err != nil {
				release()
				s.Rollback()
				return loaded, err
			}
			rec := db.NextRecID()
			resp, callErr := p.client.Call(rpc.LinkFileReq{Txn: s.txn, Name: path, RecID: rec, Grp: col.grp})
			release()
			if callErr != nil || !resp.OK() {
				s.Rollback()
				if callErr != nil {
					return loaded, callErr
				}
				return loaded, fmt.Errorf("hostdb: load: link %s: %s: %s", path, resp.Code, resp.Msg)
			}
			db.stats.Links.Add(1)
			params = append(params, value.Int(rec))
		}
		if _, err := s.conn.Exec(ins, params...); err != nil {
			s.Rollback()
			return loaded, err
		}
		loaded++
	}
	if err := s.Commit(); err != nil {
		return loaded, err
	}
	return loaded, nil
}

// writeOutcome durably records an outcome row in its own small
// transaction (the presumed-commit collecting record).
func (db *DB) writeOutcome(txn int64, outcome string) error {
	c := db.eng.Connect()
	if _, err := c.Exec(`INSERT INTO dl_outcome (txnid, outcome) VALUES (?, ?)`,
		value.Int(txn), value.Str(outcome)); err != nil {
		if c.InTxn() {
			c.Rollback()
		}
		return err
	}
	return c.Commit()
}

// gcOutcome forgets a transaction's outcome row once every participant
// acknowledged the decision; best-effort (a survivor is re-read by the
// resolution sweep, never misread).
func (db *DB) gcOutcome(txn int64) {
	c := db.eng.Connect()
	if _, err := c.Exec(`DELETE FROM dl_outcome WHERE txnid = ?`, value.Int(txn)); err != nil {
		if c.InTxn() {
			c.Rollback()
		}
		return
	}
	if c.Commit() == nil {
		db.stats.OutcomeGCs.Add(1)
	}
}

// ResolveIndoubts polls every registered DLFM for prepared-but-unresolved
// transactions and settles them from the host's knowledge: the paxos
// acceptors when that protocol is active, otherwise the outcome table
// (presumed abort by default; under Config.PresumedCommit an absent row
// means commit and a surviving collecting row means abort). Parked
// resolution hints are drained first. It returns how many transactions it
// resolved. The paper's host runs this at restart and from a polling
// daemon while a DLFM is unreachable (Section 3.3).
func (db *DB) ResolveIndoubts() (int, error) {
	parked := db.resolveParked()
	servers := db.Servers()
	sort.Strings(servers)
	// One goroutine per DLFM, bounded by the commit fan-out limit: a
	// server that is down (dial timing out) must not delay resolution on
	// the healthy ones. Each goroutine uses its own engine connection for
	// the outcome lookups — engine.Conn is single-caller.
	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, db.fanLimit())
		total atomic.Int64
		errs  = make([]error, len(servers))
	)
	for i, server := range servers {
		wg.Add(1)
		go func(i int, server string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n, err := db.resolveServerIndoubts(server)
			total.Add(int64(n))
			errs[i] = err
		}(i, server)
	}
	wg.Wait()
	resolved := parked + int(total.Load())
	for _, err := range errs {
		if err != nil {
			return resolved, err
		}
	}
	return resolved, nil
}

// resolveServerIndoubts settles one DLFM's prepared-but-unresolved
// transactions and reports how many it resolved.
func (db *DB) resolveServerIndoubts(server string) (int, error) {
	resolved := 0
	dial, err := db.dialer(server)
	if err != nil {
		return 0, nil
	}
	client, err := dial()
	if err != nil {
		db.noteDLFMFailure(server, err)
		return 0, nil // DLFM down; the daemon retries later
	}
	defer client.Close()
	resp, callErr := client.Call(rpc.ListIndoubtReq{})
	if callErr != nil || !resp.OK() {
		if callErr != nil {
			db.noteDLFMFailure(server, callErr)
		}
		return 0, nil
	}
	db.noteDLFMSuccess(server)
	c := db.eng.Connect()
	for _, txn := range resp.Txns {
		// A prepared transaction whose coordinator session is still
		// alive is not in doubt: the session will harden and drive its
		// own decision. Presuming abort here would race a live commit
		// (failover runs this mid-traffic against healthy DLFMs too).
		if db.txnActive(txn) {
			continue
		}
		decision := ""
		if db.protocol() == "paxos" {
			// The acceptors are the decision's authority: a coordinator may
			// have reached its quorum without ever hardening dl_outcome, so
			// the local table alone could presume the wrong way. An
			// unreachable quorum leaves the transaction for a later pass.
			if out, err := db.LearnOutcome(txn); err == nil {
				decision = out
			} else {
				continue
			}
		}
		if decision == "" {
			rows, err := c.Query(`SELECT outcome FROM dl_outcome WHERE txnid = ?`, value.Int(txn))
			if err != nil {
				return resolved, err
			}
			if err := c.Commit(); err != nil {
				return resolved, err
			}
			switch {
			case len(rows) > 0 && rows[0][0].Text() == "C":
				decision = "commit"
			case len(rows) > 0:
				// The presumed-commit collecting row 'I': the transaction
				// was initiated but never committed.
				decision = "abort"
			default:
				// An XA branch's outcome lives in the engine log, reached
				// through the dl_xa mapping; "wait" means the global
				// coordinator has not decided yet. With no record anywhere,
				// the convention decides.
				xa, err := db.xaOutcome(txn)
				if err != nil {
					return resolved, err
				}
				switch xa {
				case "commit":
					decision = "commit"
				case "abort":
					decision = "abort"
				case "wait":
					continue
				default:
					if db.cfg.PresumedCommit {
						decision = "commit"
					} else {
						decision = "abort" // presumed abort
					}
				}
			}
		}
		var r rpc.Response
		if decision == "commit" {
			r, callErr = client.Call(rpc.CommitReq{Txn: txn})
		} else {
			r, callErr = client.Call(rpc.AbortReq{Txn: txn})
		}
		if callErr == nil && r.OK() {
			resolved++
			db.stats.IndoubtsResolved.Add(1)
		}
	}
	return resolved, nil
}

// StartIndoubtDaemon polls ResolveIndoubts on an interval until the
// returned stop function is called — the paper's dedicated indoubt-
// resolution daemon.
func (db *DB) StartIndoubtDaemon(interval time.Duration) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-quit:
				return
			case <-ticker.C:
				db.ResolveIndoubts() //nolint:errcheck
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}
