package hostdb

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/rpc"
	"repro/internal/value"
)

// Multi-DLFM placement: a logical server name (as it appears in dlfs://
// URLs) can be backed by a cluster of DLFM members behind one placement
// map. The datalink engine routes every link/unlink through the map, so
// applications keep one namespace while the files spread over members —
// and membership changes migrate slots online (internal/cluster).

// placementStore persists cluster placement tables in dl_placement, giving
// placement the same durability as the dl_cols registry it lives beside.
type placementStore struct{ db *DB }

func (ps placementStore) SaveTable(name string, t cluster.Table) error {
	c := ps.db.eng.Connect()
	if _, err := c.Exec(`DELETE FROM dl_placement WHERE cluster = ?`, value.Str(name)); err != nil {
		c.Rollback()
		return err
	}
	for slot, owner := range t.Owners {
		if _, err := c.Exec(`INSERT INTO dl_placement (cluster, version, slots, slot, owner) VALUES (?, ?, ?, ?, ?)`,
			value.Str(name), value.Int(t.Version), value.Int(int64(t.Slots)),
			value.Int(int64(slot)), value.Str(owner)); err != nil {
			c.Rollback()
			return err
		}
	}
	return c.Commit()
}

func (ps placementStore) LoadTable(name string) (cluster.Table, bool, error) {
	c := ps.db.eng.Connect()
	rows, err := c.Query(`SELECT version, slots, slot, owner FROM dl_placement WHERE cluster = ?`, value.Str(name))
	if err != nil {
		return cluster.Table{}, false, err
	}
	if c.InTxn() {
		if err := c.Commit(); err != nil {
			return cluster.Table{}, false, err
		}
	}
	if len(rows) == 0 {
		return cluster.Table{}, false, nil
	}
	t := cluster.Table{
		Version: rows[0][0].Int64(),
		Slots:   int(rows[0][1].Int64()),
		Owners:  make([]string, int(rows[0][1].Int64())),
	}
	for _, r := range rows {
		slot := int(r[2].Int64())
		if slot < 0 || slot >= len(t.Owners) {
			return cluster.Table{}, false, fmt.Errorf("hostdb: placement row for %s has slot %d outside [0,%d)", name, slot, len(t.Owners))
		}
		t.Owners[slot] = r[3].Text()
	}
	return t, true, nil
}

// NewCluster declares (or recovers, when dl_placement holds a table under
// this name) a logical cluster. The name becomes routable: dlfs://<name>/…
// URLs resolve through the placement map instead of the dialer registry.
func (db *DB) NewCluster(name string, slots int) (*cluster.Map, error) {
	db.mu.Lock()
	if m := db.clusters[name]; m != nil {
		db.mu.Unlock()
		return m, nil
	}
	db.mu.Unlock()
	m, err := cluster.New(name, cluster.Config{
		Slots:  slots,
		Store:  placementStore{db: db},
		Obs:    db.obs,
		Tracer: db.tracer,
	})
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if exist := db.clusters[name]; exist != nil {
		return exist, nil
	}
	db.clusters[name] = m
	return m, nil
}

// SetMemberDegraded flags (or clears) a member of every registered cluster
// that knows it as degraded — the hook the fleet health monitor drives so
// the router deprioritizes a flagged member (read ordering, drain targets)
// without any placement change. Returns how many cluster maps were updated.
func (db *DB) SetMemberDegraded(member string, degraded bool) int {
	db.mu.Lock()
	maps := make([]*cluster.Map, 0, len(db.clusters))
	for _, m := range db.clusters {
		maps = append(maps, m)
	}
	db.mu.Unlock()
	n := 0
	for _, m := range maps {
		if m.HasMember(member) {
			m.SetDegraded(member, degraded)
			n++
		}
	}
	return n
}

// Cluster returns the placement map registered under name, nil if none.
func (db *DB) Cluster(name string) *cluster.Map {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.clusters[name]
}

// DescribeClusters renders every placement map — the /debug/cluster body.
func (db *DB) DescribeClusters() any {
	db.mu.Lock()
	names := make([]string, 0, len(db.clusters))
	for name := range db.clusters {
		names = append(names, name)
	}
	maps := make([]*cluster.Map, 0, len(names))
	for _, name := range names {
		maps = append(maps, db.clusters[name])
	}
	db.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, name := range names {
		out[name] = maps[i].Describe()
	}
	return out
}

// route resolves the server component of a DATALINK URL for a write: a
// clustered name routes (and fences) through its placement map, anything
// else is already physical. The release callback must be invoked once the
// DLFM call for this path returns.
func (db *DB) route(server, path string) (string, func(), error) {
	db.mu.Lock()
	m := db.clusters[server]
	db.mu.Unlock()
	if m == nil {
		return server, func() {}, nil
	}
	return m.WriteOwner(path)
}

// ReadOwners resolves the server component for a read: every member that
// may currently hold the path's link state (two during a slot move —
// dual read). A non-clustered name resolves to itself.
func (db *DB) ReadOwners(server, path string) []string {
	db.mu.Lock()
	m := db.clusters[server]
	db.mu.Unlock()
	if m == nil {
		return []string{server}
	}
	return m.ReadOwners(path)
}

// mover builds a slot mover wired to this host's coordinator machinery.
func (db *DB) mover(m *cluster.Map) *cluster.Mover {
	return cluster.NewMover(m, cluster.Hooks{
		Dial: func(server string) (*rpc.Client, error) {
			dial, err := db.dialer(server)
			if err != nil {
				return nil, err
			}
			c, err := dial()
			if err != nil {
				return nil, err
			}
			c.SetTracer(db.tracer)
			return c, nil
		},
		BeginTxn: func() int64 {
			txn := db.NextTxn()
			db.markActive(txn)
			return txn
		},
		EndTxn:          db.unmarkActive,
		ResolveIndoubts: func() { db.ResolveIndoubts() }, //nolint:errcheck
		NoteGroup:       db.noteGroup,
		Tracer:          db.tracer,
	})
}

// noteGroup records (grp, server) in dl_grpsrv after a move lands a
// group's files on a new member, so DROP TABLE's delete-group fan-out
// reaches it. Tolerates the row already existing (a session's ensureGroup
// may have raced us there).
func (db *DB) noteGroup(grp int64, server string) error {
	c := db.eng.Connect()
	n, _, err := c.QueryInt(`SELECT COUNT(*) FROM dl_grpsrv WHERE grp = ? AND server = ?`,
		value.Int(grp), value.Str(server))
	if err != nil {
		c.Rollback()
		return err
	}
	if n > 0 {
		return c.Commit()
	}
	if _, err := c.Exec(`INSERT INTO dl_grpsrv (grp, server) VALUES (?, ?)`,
		value.Int(grp), value.Str(server)); err != nil {
		c.Rollback()
		if errors.Is(err, engine.ErrDuplicate) {
			return nil
		}
		return err
	}
	return c.Commit()
}

// AddDLFM joins a member to a logical cluster: the member's dialer is
// registered (it stays individually addressable for diagnostics), the
// placement map learns it, and the rendezvous share of slots migrates over
// online. The cluster is created with DefaultSlots on first use; declare a
// custom ring with NewCluster beforehand. Returns files migrated.
func (db *DB) AddDLFM(clusterName, member string, dial Dialer) (int, error) {
	db.RegisterDLFM(member, dial)
	m, err := db.NewCluster(clusterName, 0)
	if err != nil {
		return 0, err
	}
	moves, err := m.Join(member)
	if err != nil {
		return 0, err
	}
	if len(moves) == 0 {
		return 0, nil
	}
	return db.mover(m).Run(moves)
}

// DrainDLFM migrates every slot off a member online, then deregisters it
// from the cluster (its dialer stays, so the drained DLFM remains
// reachable for verification). Returns files migrated. On error the member
// keeps its remaining slots; re-run to continue the drain.
func (db *DB) DrainDLFM(clusterName, member string) (int, error) {
	m := db.Cluster(clusterName)
	if m == nil {
		return 0, fmt.Errorf("hostdb: no cluster %q", clusterName)
	}
	plan, err := m.DrainPlan(member)
	if err != nil {
		return 0, err
	}
	files, err := db.mover(m).Run(plan)
	if err != nil {
		return files, err
	}
	return files, m.RemoveMember(member)
}

// Rebalance pins one slot onto an explicit member — relief for a hot
// group. Returns files migrated.
func (db *DB) Rebalance(clusterName string, slot int, to string) (int, error) {
	m := db.Cluster(clusterName)
	if m == nil {
		return 0, fmt.Errorf("hostdb: no cluster %q", clusterName)
	}
	mv, err := m.PlanMove(slot, to)
	if err != nil {
		return 0, err
	}
	return db.mover(m).MoveSlot(mv)
}

// RebalanceCluster drives the table back to the pure rendezvous assignment
// for the current member set — the retry after a partially failed join,
// and the cleanup for stale pins.
func (db *DB) RebalanceCluster(clusterName string) (int, error) {
	m := db.Cluster(clusterName)
	if m == nil {
		return 0, fmt.Errorf("hostdb: no cluster %q", clusterName)
	}
	return db.mover(m).Run(m.PlanRebalance())
}
