package hostdb

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/rpc"
)

// The parked-indoubt list: cheap in-memory hints for transactions whose
// resolution could not complete inline — a phase-2 ack that never came, a
// one-phase commit whose reply was lost, a paxos commit with no reachable
// acceptor quorum. ResolveIndoubts drains it before the per-server sweep,
// retrying each hint directly instead of paying a full ListIndoubt poll.
// The list is bounded (Config.IndoubtCap): losing a hint loses nothing
// durable — the outcome table, XA mapping, and acceptor state still settle
// the transaction through the sweep — so overflow drops the oldest entry
// and counts it on host_indoubt_dropped_total.

// parkedTxn is one resolution hint.
type parkedTxn struct {
	txn    int64
	server string // "" when no directed participant retry is needed
	// decision: "commit"/"abort" (re-send the known outcome), "learn"
	// (ask the paxos acceptors first), or "query" (ask the participant's
	// own durable state — the one-phase ambiguity).
	decision string
}

func (db *DB) indoubtCap() int {
	if db.cfg.IndoubtCap > 0 {
		return db.cfg.IndoubtCap
	}
	return 1024
}

// parkIndoubt appends a hint, dropping the oldest beyond the cap.
func (db *DB) parkIndoubt(txn int64, server, decision string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := len(db.parked); n >= db.indoubtCap() {
		drop := n - db.indoubtCap() + 1
		db.parked = append(db.parked[:0], db.parked[drop:]...)
		db.stats.IndoubtDropped.Add(int64(drop))
	}
	db.parked = append(db.parked, parkedTxn{txn: txn, server: server, decision: decision})
}

// takeParked removes and returns every parked hint.
func (db *DB) takeParked() []parkedTxn {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := db.parked
	db.parked = nil
	return out
}

// ParkedIndoubts reports how many hints are currently parked.
func (db *DB) ParkedIndoubts() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.parked)
}

// resolveParked retries every parked hint once, re-parking the ones that
// still cannot complete. Returns how many it settled.
func (db *DB) resolveParked() int {
	entries := db.takeParked()
	resolved := 0
	for _, e := range entries {
		dec := e.decision
		switch dec {
		case "learn":
			out, err := db.LearnOutcome(e.txn)
			if err != nil {
				db.parkIndoubt(e.txn, e.server, "learn")
				continue
			}
			dec = out
		case "query":
			out, err := db.queryOutcome1PC(e.server, e.txn)
			if err != nil {
				db.parkIndoubt(e.txn, e.server, "query")
				continue
			}
			// The participant already decided and applied; learning which
			// way settles the hint — there is nothing to send back.
			_ = out
			resolved++
			db.stats.IndoubtsResolved.Add(1)
			continue
		}
		if e.server == "" {
			// Outcome learnable again; the per-server sweep (or the DLFMs'
			// own learner daemons) applies it to any prepared participant.
			resolved++
			continue
		}
		dial, err := db.dialer(e.server)
		if err != nil {
			resolved++ // server unregistered; nothing left to drive
			continue
		}
		client, err := dial()
		if err != nil {
			db.parkIndoubt(e.txn, e.server, dec)
			continue
		}
		var r rpc.Response
		var callErr error
		if dec == "commit" {
			r, callErr = client.Call(rpc.CommitReq{Txn: e.txn})
		} else {
			r, callErr = client.Call(rpc.AbortReq{Txn: e.txn})
		}
		client.Close()
		if callErr != nil || !r.OK() {
			db.parkIndoubt(e.txn, e.server, dec)
			continue
		}
		resolved++
		db.stats.IndoubtsResolved.Add(1)
	}
	return resolved
}

// queryOutcome1PC resolves a one-phase commit whose reply was lost by
// asking the participant's durable transaction state, with capped backoff
// between attempts. "committed" maps to commit; "none" means the
// participant's transaction died with the connection before deciding, so
// it can never commit — abort. "prepared"/"inflight" mean the original
// request may still be executing: wait and ask again.
func (db *DB) queryOutcome1PC(server string, txn int64) (string, error) {
	bo := fault.Backoff{Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond}
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Delay(attempt - 1))
		}
		dial, err := db.dialer(server)
		if err != nil {
			return "", err
		}
		client, err := dial()
		if err != nil {
			lastErr = err
			continue
		}
		resp, callErr := client.Call(rpc.QueryOutcomeReq{Txn: txn})
		client.Close()
		if callErr != nil {
			lastErr = callErr
			continue
		}
		if !resp.OK() {
			lastErr = fmt.Errorf("hostdb: query outcome at %s: %s: %s", server, resp.Code, resp.Msg)
			continue
		}
		switch resp.Msg {
		case "committed":
			return "commit", nil
		case "none":
			return "abort", nil
		default: // "prepared"/"inflight": still in motion
			lastErr = fmt.Errorf("hostdb: txn %d still %s at %s", txn, resp.Msg, server)
		}
	}
	return "", lastErr
}
