package hostdb

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fsim"
	"repro/internal/sql"
	"repro/internal/value"
)

// Datalink URLs name a file on a managed server: dlfs://<server>/<path>.
const urlScheme = "dlfs://"

// ParseURL splits a DATALINK value into server and absolute path. The
// server component may carry a port (host:port). Duplicate slashes in the
// path collapse to one, so the same file compares equal however the URL
// was spelled; URLs with an empty server ("dlfs:///a") or an empty path
// ("dlfs://srv", "dlfs://srv/") are rejected.
func ParseURL(url string) (server, path string, err error) {
	if !strings.HasPrefix(url, urlScheme) {
		return "", "", fmt.Errorf("hostdb: datalink value %q is not a %s URL", url, urlScheme)
	}
	rest := url[len(urlScheme):]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return "", "", fmt.Errorf("hostdb: datalink value %q lacks a path", url)
	}
	server, path = rest[:slash], canonPath(rest[slash:])
	if server == "" {
		return "", "", fmt.Errorf("hostdb: datalink value %q lacks a server", url)
	}
	if path == "/" {
		return "", "", fmt.Errorf("hostdb: datalink value %q lacks a path", url)
	}
	return server, path, nil
}

// canonPath collapses runs of slashes; the no-op case stays allocation-free.
func canonPath(p string) string {
	if !strings.Contains(p, "//") {
		return p
	}
	var b strings.Builder
	b.Grow(len(p))
	var prev byte
	for i := 0; i < len(p); i++ {
		if p[i] == '/' && prev == '/' {
			continue
		}
		b.WriteByte(p[i])
		prev = p[i]
	}
	return b.String()
}

// URL composes a DATALINK value; a path missing its leading slash gets one,
// so URL(ParseURL(u)) round-trips and URL(srv, "a/b") is still well formed.
func URL(server, path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return urlScheme + server + path
}

// recidCol names the hidden column that stores the link recovery id next
// to each DATALINK column (the paper's host keeps the recovery id with the
// datalink value; we keep it in a shadow column).
func recidCol(col string) string { return col + "__recid" }

// dlCol is the registry entry for one DATALINK column.
type dlCol struct {
	name     string
	grp      int64
	recovery bool
	fullctl  bool
}

// CreateTable executes DDL that may declare DATALINK columns. The DDL
// names them as VARCHAR columns; dlCols identifies which are DATALINK and
// with what options. The datalink engine adds the hidden recovery-id
// column for each and records the column→file-group mapping.
func (db *DB) CreateTable(ddl string, dlCols ...DatalinkCol) error {
	stmt, err := sql.Parse(ddl)
	if err != nil {
		return err
	}
	ct, isCreate := stmt.(sql.CreateTable)
	if !isCreate {
		return fmt.Errorf("hostdb: CreateTable requires CREATE TABLE DDL, got %T", stmt)
	}
	declared := make(map[string]value.Kind, len(ct.Cols))
	for _, c := range ct.Cols {
		declared[c.Name] = c.Type
	}
	for _, dc := range dlCols {
		kind, exists := declared[strings.ToLower(dc.Name)]
		if !exists {
			return fmt.Errorf("hostdb: DATALINK column %q not declared in DDL", dc.Name)
		}
		if kind != value.KindString {
			return fmt.Errorf("hostdb: DATALINK column %q must be VARCHAR", dc.Name)
		}
	}

	// Rewrite the DDL with a shadow recovery-id column per DATALINK column.
	rewritten := strings.TrimRight(strings.TrimSpace(ddl), ")")
	for _, dc := range dlCols {
		rewritten += ", " + recidCol(strings.ToLower(dc.Name)) + " BIGINT"
	}
	rewritten += ")"

	c := db.eng.Connect()
	if _, err := c.Exec(rewritten); err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed && c.InTxn() {
			c.Rollback()
		}
	}()
	for _, dc := range dlCols {
		grp := grpSeq.Add(1)
		rec, full := int64(0), int64(0)
		if dc.Recovery {
			rec = 1
		}
		if dc.FullControl {
			full = 1
		}
		if _, err := c.Exec(`INSERT INTO dl_cols (tbl, col, grp, recovery, fullctl) VALUES (?, ?, ?, ?, ?)`,
			value.Str(ct.Name), value.Str(strings.ToLower(dc.Name)),
			value.Int(grp), value.Int(rec), value.Int(full)); err != nil {
			return err
		}
	}
	committed = true
	if !c.InTxn() {
		return nil // no DATALINK columns: the DDL already autocommitted
	}
	return c.Commit()
}

// datalinkCols returns the registry entries for table, empty when the
// table has no DATALINK columns.
func (db *DB) datalinkCols(conn connLike, table string) ([]dlCol, error) {
	rows, err := conn.Query(`SELECT col, grp, recovery, fullctl FROM dl_cols WHERE tbl = ?`, value.Str(table))
	if err != nil {
		return nil, err
	}
	out := make([]dlCol, 0, len(rows))
	for _, r := range rows {
		out = append(out, dlCol{
			name:     r[0].Text(),
			grp:      r[1].Int64(),
			recovery: r[2].Int64() == 1,
			fullctl:  r[3].Int64() == 1,
		})
	}
	return out, nil
}

// connLike is the slice of engine.Conn the datalink engine needs; it lets
// helpers run on any session's connection.
type connLike interface {
	Query(text string, params ...value.Value) ([]value.Row, error)
	Exec(text string, params ...value.Value) (int64, error)
}

// MintToken signs a read token for a full-access-control file, as the
// host does when an application SELECTs the DATALINK value.
func (db *DB) MintToken(path string) string {
	if len(db.cfg.TokenSecret) == 0 {
		return ""
	}
	db.stats.TokensMinted.Add(1)
	ttl := db.cfg.TokenTTL
	if ttl <= 0 {
		ttl = time.Hour
	}
	return fsim.MintToken(db.cfg.TokenSecret, path, time.Now().Add(ttl).Unix())
}

// renderPreds re-renders a parsed WHERE clause as SQL text with parameter
// values inlined as literals, so the datalink engine can issue its own
// row-identifying SELECT for the same predicate.
func renderPreds(preds []sql.Pred, params []value.Value) (string, error) {
	if len(preds) == 0 {
		return "", nil
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		var rhs string
		switch v := p.Val.(type) {
		case sql.Literal:
			rhs = v.V.SQLLiteral()
		case sql.Param:
			if v.Idx >= len(params) {
				return "", fmt.Errorf("hostdb: missing parameter %d", v.Idx+1)
			}
			rhs = params[v.Idx].SQLLiteral()
		case sql.Column:
			rhs = v.Name
		default:
			return "", fmt.Errorf("hostdb: unsupported expression %T", p.Val)
		}
		parts[i] = p.Col + " " + p.Op.String() + " " + rhs
	}
	return " WHERE " + strings.Join(parts, " AND "), nil
}
