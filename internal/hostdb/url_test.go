package hostdb

import "testing"

func TestParseURL(t *testing.T) {
	cases := []struct {
		url    string
		server string
		path   string
		ok     bool
	}{
		{"dlfs://fs1/v/clip1.mpg", "fs1", "/v/clip1.mpg", true},
		{"dlfs://fs1/a", "fs1", "/a", true},
		// Server with a port.
		{"dlfs://fs1:9000/v/clip.mpg", "fs1:9000", "/v/clip.mpg", true},
		// Duplicate slashes collapse, wherever they appear.
		{"dlfs://fs1//v/clip.mpg", "fs1", "/v/clip.mpg", true},
		{"dlfs://fs1/v//a///b.mpg", "fs1", "/v/a/b.mpg", true},
		// Trailing slash is part of the path, not an error.
		{"dlfs://fs1/v/", "fs1", "/v/", true},
		// Rejected shapes.
		{"dlfs://fs1", "", "", false},   // no path at all
		{"dlfs://fs1/", "", "", false},  // empty path
		{"dlfs://fs1//", "", "", false}, // empty path after collapsing
		{"dlfs:///a", "", "", false},    // empty server
		{"dlfs://", "", "", false},      // nothing
		{"http://fs1/a", "", "", false}, // wrong scheme
		{"fs1/a", "", "", false},        // no scheme
		{"", "", "", false},
	}
	for _, tc := range cases {
		server, path, err := ParseURL(tc.url)
		if tc.ok != (err == nil) {
			t.Errorf("ParseURL(%q): err = %v, want ok=%v", tc.url, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if server != tc.server || path != tc.path {
			t.Errorf("ParseURL(%q) = (%q, %q), want (%q, %q)", tc.url, server, path, tc.server, tc.path)
		}
		// Round trip: composing the parsed parts parses back identically.
		s2, p2, err := ParseURL(URL(server, path))
		if err != nil || s2 != server || p2 != path {
			t.Errorf("round trip %q: ParseURL(URL(...)) = (%q, %q, %v)", tc.url, s2, p2, err)
		}
	}
}

func TestURLAddsLeadingSlash(t *testing.T) {
	if got := URL("fs1", "a/b"); got != "dlfs://fs1/a/b" {
		t.Fatalf("URL = %q", got)
	}
	if got := URL("fs1:9000", "/a"); got != "dlfs://fs1:9000/a" {
		t.Fatalf("URL = %q", got)
	}
}
