// Package hostdb simulates the host database server of the DataLinks
// architecture (Figure 2): a relational database (built on the same
// internal/engine the DLFM uses) extended with the *datalink engine* — the
// component that intercepts SQL touching DATALINK columns, drives the
// DLFM's link/unlink APIs in the same transaction, and coordinates the
// two-phase commit across every DLFM the transaction touched.
//
// It also implements the host-side utilities the paper describes: Backup
// (with the wait-for-archive handshake), Restore to a point in time,
// Reconcile, bulk Load (batched DLFM transactions), DROP TABLE (file-group
// deletion), and the indoubt-resolution daemon that polls DLFMs after a
// failure (Section 3.3).
package hostdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// Dialer opens a fresh connection (= DLFM child agent) to a DLFM.
type Dialer func() (*rpc.Client, error)

// Config tunes the host database.
type Config struct {
	// Name identifies the database; DBID seeds recovery-id generation.
	Name string
	DBID int64
	// DB is the host engine configuration.
	DB engine.Config
	// SyncCommit makes the phase-2 commit call to DLFM synchronous. The
	// paper found this mandatory — the asynchronous variant produces the
	// distributed deadlock of Section 4 (experiment E6).
	SyncCommit bool
	// CommitFanout bounds how many per-participant 2PC calls (prepare,
	// phase-2 commit/abort, indoubt resolution) one operation issues
	// concurrently. Zero defaults to 8; 1 restores the fully sequential
	// pipeline.
	CommitFanout int
	// CommitProtocol selects how the commit decision is made durable:
	// "2pc" (default) records it in the host's dl_outcome table, so a
	// coordinator crash between phases leaves participants blocked until
	// the host resolves them; "paxos" replicates the decision across the
	// registered acceptors (Gray & Lamport's Paxos Commit), so any
	// participant can learn the outcome without the coordinator.
	CommitProtocol string
	// OnePhase enables the single-participant fast path: a transaction
	// that touched exactly one DLFM skips prepare entirely and delegates
	// the commit decision to that participant (one network round trip and
	// one forced log write instead of two of each).
	OnePhase bool
	// PresumedCommit switches the outcome table to the presumed-commit
	// convention: a durable "collecting" row is forced before the
	// prepares, the commit record is garbage-collected once every
	// participant acknowledged, and an *absent* row means commit.
	// The knob must be constant for the lifetime of the database —
	// mixing conventions makes old absent rows unreadable.
	PresumedCommit bool
	// IndoubtCap bounds the in-memory list of transactions parked for
	// later resolution (phase-2 transport failures, fast-path ambiguity).
	// Beyond the cap the oldest entry is dropped — it is still covered by
	// the durable outcome table, only the cheap retry hint is lost.
	// Zero defaults to 1024.
	IndoubtCap int
	// TokenSecret signs access tokens for full-access-control files; it is
	// shared with the DLFF on each file server. Empty disables tokens.
	TokenSecret []byte
	// TokenTTL bounds token validity.
	TokenTTL time.Duration
	// LoadBatchN is the DLFM batch-commit interval for the Load utility.
	LoadBatchN int
	// FailoverThreshold is how many consecutive transport failures (or
	// phase-2 give-ups) against a DLFM trigger failover to its registered
	// standby. Zero defaults to 3. Only meaningful once RegisterStandby
	// has armed a standby for the server.
	FailoverThreshold int
	// AdmissionLockFrac sheds new transactions while the host engine's
	// held-lock count is at or above this fraction of its LockListSize cap
	// (e.g. 0.8 = shed at 80% full). Zero disables the lock signal; it is
	// also inert when the engine's lock list is uncapped.
	AdmissionLockFrac float64
	// AdmissionWALQueueMax sheds new transactions while the WAL
	// group-commit queue holds at least this many waiting committers. Zero
	// disables the WAL signal. Both signals zero = no admission control.
	AdmissionWALQueueMax int
	// AdmissionMaxDelay lets a new transaction wait this long for the
	// pressure to clear before it is shed — a short arrival-side queue that
	// rides out bursts. Zero sheds immediately.
	AdmissionMaxDelay time.Duration
	// Obs receives the host's counters and histograms (host_* names) plus
	// those of its engine. Nil creates a fresh registry labeled
	// host=<Name>; retrieve it with DB.Obs.
	Obs *obs.Registry
	// Tracer receives host-side 2PC trace events. Nil creates a fresh
	// ring; share one tracer with the DLFMs for a unified chain.
	Tracer *obs.Tracer
}

// DefaultConfig returns the production host configuration: synchronous
// phase-2 commit, 60 s lock timeout. Next-key locking is off in the host
// engine: DB2's type-2 indexes (standard by V5) avoid the end-of-index
// insert hot-spot that key locking would otherwise create on monotonic
// keys, and the paper's next-key lesson concerns the DLFM's local
// database, not the host.
func DefaultConfig(name string) Config {
	db := engine.DefaultConfig("hostdb-" + name)
	db.NextKeyLocking = false
	// The 2PC commit decision (dl_outcome row) is hardened by the local
	// commit in phase 1; presumed abort only works if that commit is
	// forced before phase 2 starts.
	db.SyncCommit = true
	// Concurrent coordinators share commit fsyncs (WAL group commit).
	db.GroupCommit = true
	return Config{
		Name:        name,
		DBID:        1,
		DB:          db,
		SyncCommit:  true,
		TokenSecret: []byte("datalinks-" + name),
		TokenTTL:    time.Hour,
		LoadBatchN:  100,
	}
}

// Stats counts host-side datalink activity. The counters also back the
// host_* metrics on the obs registry.
type Stats struct {
	Links            obs.Counter
	Unlinks          obs.Counter
	Commits          obs.Counter
	Aborts           obs.Counter
	StmtBackouts     obs.Counter
	IndoubtsResolved obs.Counter
	TokensMinted     obs.Counter
	Failovers        obs.Counter
	ReadOnlyVotes    obs.Counter // participants excluded from phase 2 by a read-only vote
	OnePhaseCommits  obs.Counter // commits delegated to a single participant
	PaxosCommits     obs.Counter // commits decided through the acceptor quorum
	PaxosRecoveries  obs.Counter // outcomes the session had to learn back from acceptors
	OutcomeGCs       obs.Counter // presumed-commit outcome rows garbage-collected
	IndoubtDropped   obs.Counter // parked indoubt hints dropped at the cap
	AdmissionShed    obs.Counter // new transactions refused with ErrOverload
	AdmissionDelayed obs.Counter // new transactions that waited at admission
}

func (st *Stats) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("host_links_total", &st.Links)
	reg.RegisterCounter("host_unlinks_total", &st.Unlinks)
	reg.RegisterCounter("host_commits_total", &st.Commits)
	reg.RegisterCounter("host_aborts_total", &st.Aborts)
	reg.RegisterCounter("host_stmt_backouts_total", &st.StmtBackouts)
	reg.RegisterCounter("host_indoubts_resolved_total", &st.IndoubtsResolved)
	reg.RegisterCounter("host_tokens_minted_total", &st.TokensMinted)
	reg.RegisterCounter("host_failovers_total", &st.Failovers)
	reg.RegisterCounter("host_readonly_votes_total", &st.ReadOnlyVotes)
	reg.RegisterCounter("host_one_phase_commits_total", &st.OnePhaseCommits)
	reg.RegisterCounter("host_paxos_commits_total", &st.PaxosCommits)
	reg.RegisterCounter("host_paxos_recoveries_total", &st.PaxosRecoveries)
	reg.RegisterCounter("host_outcome_gc_total", &st.OutcomeGCs)
	reg.RegisterCounter("host_indoubt_dropped_total", &st.IndoubtDropped)
	reg.RegisterCounter("host_admission_shed_total", &st.AdmissionShed)
	reg.RegisterCounter("host_admission_delayed_total", &st.AdmissionDelayed)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Links, Unlinks, Commits, Aborts int64
	StmtBackouts, IndoubtsResolved  int64
	TokensMinted, Failovers         int64
	ReadOnlyVotes, OnePhaseCommits  int64
	PaxosCommits, PaxosRecoveries   int64
	OutcomeGCs, IndoubtDropped      int64
	AdmissionShed, AdmissionDelayed int64
}

// DB is one host database instance.
type DB struct {
	cfg Config
	eng *engine.DB

	mu        sync.Mutex
	dialers   map[string]Dialer
	standbys  map[string]*standbyEntry
	failCount map[string]int
	// acceptors holds the Paxos Commit acceptor endpoints, dialed lazily
	// and shared by every session; order is fixed at registration so
	// learner ballots hit the same quorum shape everywhere.
	acceptors []*acceptorEntry
	// parked holds resolution hints for transactions whose phase 2 (or
	// fast-path ambiguity) could not complete; bounded by Config.IndoubtCap.
	parked []parkedTxn
	// clusters maps a logical server name to its placement map; URLs
	// naming a cluster route through it instead of the dialer registry.
	clusters map[string]*cluster.Map
	// activeTxns holds every transaction id a live session currently owns.
	// Indoubt resolution must not presume abort for these: a prepared DLFM
	// sub-transaction whose coordinator is alive is not in doubt — the
	// session just has not hardened its decision yet.
	activeTxns map[int64]struct{}

	txnSeq atomic.Int64
	recSeq atomic.Int64

	stats  Stats
	obs    *obs.Registry
	tracer *obs.Tracer
	// commitHist times Session.Commit end to end: both 2PC phases plus the
	// local decision hardening (host_commit_seconds).
	commitHist *obs.Histogram
	// prepFanout counts 2PC fan-out calls currently in flight across all
	// sessions (host_prepare_fanout).
	prepFanout obs.Gauge
	// attribHists export per-commit latency attribution, one histogram per
	// bucket (host_attrib_<bucket>_seconds), each carrying an exemplar
	// trace id pointing at the worst observed commit.
	attribHists map[string]*obs.Histogram

	// backups holds the quiesced backup images (the paper's backup files).
	backups map[int64]*backupImage
	bkSeq   atomic.Int64
}

// Open creates or recovers a host database.
func Open(cfg Config) (*DB, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.New().Label("host", cfg.Name)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	cfg.DB.Obs = cfg.Obs
	cfg.DB.Tracer = cfg.Tracer
	eng, err := engine.Open(cfg.DB)
	if err != nil {
		return nil, fmt.Errorf("hostdb: open engine: %w", err)
	}
	db := &DB{
		cfg:        cfg,
		eng:        eng,
		obs:        cfg.Obs,
		tracer:     cfg.Tracer,
		commitHist: obs.NewHistogram(),
		dialers:    make(map[string]Dialer),
		standbys:   make(map[string]*standbyEntry),
		clusters:   make(map[string]*cluster.Map),
		failCount:  make(map[string]int),
		activeTxns: make(map[int64]struct{}),
		backups:    make(map[int64]*backupImage),
	}
	if db.cfg.FailoverThreshold <= 0 {
		db.cfg.FailoverThreshold = 3
	}
	db.stats.register(db.obs)
	db.obs.RegisterHistogram("host_commit_seconds", db.commitHist)
	db.obs.GaugeFunc("host_prepare_fanout", func() float64 {
		return float64(db.prepFanout.Load())
	})
	// Admission-pressure gauges: the two signals the controller watches,
	// exported even when admission is off so dashboards can see the margin.
	db.obs.GaugeFunc("host_admission_lock_pressure", func() float64 {
		f, _ := db.admissionPressure()
		return f
	})
	db.obs.GaugeFunc("host_admission_wal_queue", func() float64 {
		_, q := db.admissionPressure()
		return float64(q)
	})
	db.attribHists = make(map[string]*obs.Histogram, len(obs.AttributionBuckets))
	for _, b := range obs.AttributionBuckets {
		h := obs.NewHistogram()
		db.attribHists[b] = h
		db.obs.RegisterHistogram("host_attrib_"+b+"_seconds", h)
	}
	// The RPC transport's process-wide counters (rpc_inflight,
	// rpc_call_timeouts_total, …) ride on the host registry so they reach
	// /metrics and the BENCH snapshot.
	rpc.Instrument(db.obs)
	now := time.Now().UnixNano()
	db.txnSeq.Store(now)
	db.recSeq.Store(now)
	if err := db.bootstrapSchema(); err != nil {
		eng.Close()
		return nil, err
	}
	return db, nil
}

// Engine exposes the underlying host engine for diagnostics and tests.
func (db *DB) Engine() *engine.DB { return db.eng }

// Obs returns the registry holding the host's metrics.
func (db *DB) Obs() *obs.Registry { return db.obs }

// Tracer returns the trace ring receiving host-side 2PC events.
func (db *DB) Tracer() *obs.Tracer { return db.tracer }

// observeAttribution folds the finished commit's span tree into the
// per-bucket attribution histograms, using the txn id as the exemplar so a
// histogram outlier links straight to /debug/txn/<id>.
func (db *DB) observeAttribution(txn int64) {
	a := db.tracer.Attribution(txn)
	for b, ns := range a.Buckets {
		if h := db.attribHists[b]; h != nil && ns > 0 {
			h.ObserveEx(time.Duration(ns), txn)
		}
	}
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Snapshot {
	return Snapshot{
		Links:            db.stats.Links.Load(),
		Unlinks:          db.stats.Unlinks.Load(),
		Commits:          db.stats.Commits.Load(),
		Aborts:           db.stats.Aborts.Load(),
		StmtBackouts:     db.stats.StmtBackouts.Load(),
		IndoubtsResolved: db.stats.IndoubtsResolved.Load(),
		TokensMinted:     db.stats.TokensMinted.Load(),
		Failovers:        db.stats.Failovers.Load(),
		ReadOnlyVotes:    db.stats.ReadOnlyVotes.Load(),
		OnePhaseCommits:  db.stats.OnePhaseCommits.Load(),
		PaxosCommits:     db.stats.PaxosCommits.Load(),
		PaxosRecoveries:  db.stats.PaxosRecoveries.Load(),
		OutcomeGCs:       db.stats.OutcomeGCs.Load(),
		IndoubtDropped:   db.stats.IndoubtDropped.Load(),
		AdmissionShed:    db.stats.AdmissionShed.Load(),
		AdmissionDelayed: db.stats.AdmissionDelayed.Load(),
	}
}

// CommitP99 reports the 99th-percentile Session.Commit latency observed so
// far (the host_commit_seconds histogram), for experiment reporting.
func (db *DB) CommitP99() time.Duration { return db.commitHist.Quantile(0.99) }

// Close releases the host engine.
func (db *DB) Close() error { return db.eng.Close() }

// RegisterDLFM makes the DLFM managing server reachable. Each session
// dials its own connection, becoming a distinct child agent on the DLFM
// side, exactly as each DB2 agent does (Section 3.5).
func (db *DB) RegisterDLFM(server string, dial Dialer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dialers[server] = dial
}

func (db *DB) dialer(server string) (Dialer, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	d, exists := db.dialers[server]
	if !exists {
		return nil, fmt.Errorf("hostdb: no DLFM registered for file server %q", server)
	}
	return d, nil
}

// Servers lists the registered file servers.
func (db *DB) Servers() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.dialers))
	for s := range db.dialers {
		out = append(out, s)
	}
	return out
}

// NextTxn mints a host transaction id: monotonically increasing, which the
// paper calls "absolutely essential" (Section 3.3); the nanosecond base
// keeps it monotonic across restarts.
func (db *DB) NextTxn() int64 { return db.txnSeq.Add(1) }

// markActive/unmarkActive bracket a session's ownership of a transaction
// id; txnActive answers whether a live coordinator still owns it.
func (db *DB) markActive(txn int64) {
	db.mu.Lock()
	db.activeTxns[txn] = struct{}{}
	db.mu.Unlock()
}

func (db *DB) unmarkActive(txn int64) {
	db.mu.Lock()
	delete(db.activeTxns, txn)
	db.mu.Unlock()
}

func (db *DB) txnActive(txn int64) bool {
	db.mu.Lock()
	_, active := db.activeTxns[txn]
	db.mu.Unlock()
	return active
}

// NextRecID mints a recovery id (dbid + timestamp in the paper; here a
// monotone counter seeded by the clock, unique across restarts).
func (db *DB) NextRecID() int64 { return db.recSeq.Add(1) }

// Crash simulates a host database failure: the engine restarts from its
// log; every open session is dead. After a crash the caller runs
// ResolveIndoubts (or starts the resolution daemon) to settle DLFM-side
// prepared transactions (Section 3.3).
func (db *DB) Crash() error {
	return db.eng.Crash()
}

// bootstrapSchema creates the datalink engine's own metadata tables: the
// DATALINK column registry, the (group, server) placement map, and the
// transaction-outcome table that implements presumed abort.
func (db *DB) bootstrapSchema() error {
	if _, err := db.eng.Catalog().Table("dl_cols"); err == nil {
		// Recovered from the log. The placement table postdates the base
		// schema, so a database recovered from an older log may lack it.
		if _, err := db.eng.Catalog().Table("dl_placement"); err != nil {
			return db.createPlacementSchema()
		}
		return nil
	}
	c := db.eng.Connect()
	ddl := []string{
		`CREATE TABLE dl_cols (tbl VARCHAR NOT NULL, col VARCHAR NOT NULL, grp BIGINT NOT NULL, recovery BIGINT NOT NULL, fullctl BIGINT NOT NULL)`,
		`CREATE UNIQUE INDEX dl_cols_tc ON dl_cols (tbl, col)`,
		`CREATE INDEX dl_cols_tbl ON dl_cols (tbl)`,
		`CREATE TABLE dl_grpsrv (grp BIGINT NOT NULL, server VARCHAR NOT NULL)`,
		`CREATE UNIQUE INDEX dl_grpsrv_gs ON dl_grpsrv (grp, server)`,
		`CREATE TABLE dl_outcome (txnid BIGINT NOT NULL, outcome VARCHAR NOT NULL)`,
		`CREATE UNIQUE INDEX dl_outcome_id ON dl_outcome (txnid)`,
		`CREATE TABLE dl_xa (host_txn BIGINT NOT NULL, engine_txn BIGINT NOT NULL)`,
		`CREATE UNIQUE INDEX dl_xa_host ON dl_xa (host_txn)`,
		`CREATE TABLE dl_backups (backupid BIGINT NOT NULL, recid BIGINT NOT NULL, ts BIGINT NOT NULL)`,
		`CREATE UNIQUE INDEX dl_backups_id ON dl_backups (backupid)`,
	}
	for _, stmt := range ddl {
		if _, err := c.Exec(stmt); err != nil {
			return fmt.Errorf("hostdb: bootstrap: %w", err)
		}
	}
	// The registry tables are hot under concurrent workloads; craft their
	// statistics the same way DLFM does so lookups use index plans.
	const big = 10_000_000
	db.eng.SetStats("dl_cols", big, map[string]int64{"tbl": big, "col": big})
	db.eng.SetStats("dl_grpsrv", big, map[string]int64{"grp": big, "server": 100})
	db.eng.SetStats("dl_outcome", big, map[string]int64{"txnid": big})
	db.eng.SetStats("dl_xa", big, map[string]int64{"host_txn": big})
	db.eng.SetStats("dl_backups", big, map[string]int64{"backupid": big})
	return db.createPlacementSchema()
}

// createPlacementSchema creates the cluster placement table: one row per
// (cluster, slot) with the table version and ring size denormalized onto
// each row, replaced wholesale on every version bump (rings are small).
func (db *DB) createPlacementSchema() error {
	c := db.eng.Connect()
	ddl := []string{
		`CREATE TABLE dl_placement (cluster VARCHAR NOT NULL, version BIGINT NOT NULL, slots BIGINT NOT NULL, slot BIGINT NOT NULL, owner VARCHAR NOT NULL)`,
		`CREATE UNIQUE INDEX dl_placement_cs ON dl_placement (cluster, slot)`,
	}
	for _, stmt := range ddl {
		if _, err := c.Exec(stmt); err != nil {
			return fmt.Errorf("hostdb: bootstrap: %w", err)
		}
	}
	const big = 10_000_000
	db.eng.SetStats("dl_placement", big, map[string]int64{"cluster": 100, "slot": 10_000})
	return nil
}

// DatalinkCol declares one DATALINK column when creating a table.
type DatalinkCol struct {
	Name string
	// Recovery: DLFM archives the file and restores it in point-in-time
	// recovery ("RECOVERY YES").
	Recovery bool
	// FullControl: reads require a database token ("READ PERMISSION DB").
	FullControl bool
}

// grpSeq assigns file-group ids; groups correspond one-to-one to DATALINK
// columns (Section 3).
var grpSeq atomic.Int64

func init() { grpSeq.Store(time.Now().UnixNano() & 0xFFFFFF) }
