package hostdb

import (
	"fmt"
)

// standbyEntry is one registered hot standby: where to reach it once
// promoted, and how to promote it. done flips exactly once, when a
// promotion has succeeded and the dialer swap is in place.
type standbyEntry struct {
	dial       Dialer
	promote    func() error
	inProgress bool
	done       bool
}

// RegisterStandby registers a hot standby for a DLFM server. When the host
// sees FailoverThreshold consecutive transport failures (or phase-2
// give-ups) against the primary, it calls promote, swaps the server's
// dialer to the standby, and re-resolves indoubt transactions against it.
// Sessions keep using the same server name throughout.
func (db *DB) RegisterStandby(server string, dial Dialer, promote func() error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.standbys[server] = &standbyEntry{dial: dial, promote: promote}
}

// FailedOver reports whether the server's standby has been promoted and is
// now serving its traffic.
func (db *DB) FailedOver(server string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	sb := db.standbys[server]
	return sb != nil && sb.done
}

// noteDLFMFailure records one failed interaction with a DLFM. Failures only
// count when a standby is registered; FailoverThreshold consecutive ones
// trigger Failover. A failure can be a transport error (dial refused, call
// error, call timeout) or a phase-2 "severe" give-up response — both mean
// the primary cannot make progress.
func (db *DB) noteDLFMFailure(server string, cause error) {
	db.mu.Lock()
	sb := db.standbys[server]
	if sb == nil || sb.done || sb.inProgress {
		db.mu.Unlock()
		return
	}
	db.failCount[server]++
	n := db.failCount[server]
	db.mu.Unlock()
	db.tracer.Emitf(0, "host", "dlfm_failure", "%s: %d/%d: %v", server, n, db.cfg.FailoverThreshold, cause)
	if n >= db.cfg.FailoverThreshold {
		db.Failover(server) //nolint:errcheck // a failed promote retries on the next threshold trip
	}
}

// noteDLFMSuccess resets the server's consecutive-failure count.
func (db *DB) noteDLFMSuccess(server string) {
	db.mu.Lock()
	if db.failCount[server] != 0 {
		db.failCount[server] = 0
	}
	db.mu.Unlock()
}

// Failover promotes the server's registered standby and routes the server's
// traffic to it. Idempotent: once a promotion has succeeded, further calls
// return nil immediately; while one is in flight, concurrent calls return
// nil and let it finish. A failed promotion leaves the entry armed so a
// later call (or the next failure-threshold trip) retries.
//
// After the dialer swap the host re-resolves indoubt transactions: the
// standby re-materialized the primary's prepared transactions from the
// replicated log, and the outcome table decides them (commit if a decision
// row exists, presumed abort otherwise).
func (db *DB) Failover(server string) error {
	db.mu.Lock()
	sb := db.standbys[server]
	if sb == nil {
		db.mu.Unlock()
		return fmt.Errorf("hostdb: no standby registered for %q", server)
	}
	if sb.done || sb.inProgress {
		db.mu.Unlock()
		return nil
	}
	sb.inProgress = true
	db.mu.Unlock()

	db.tracer.Emitf(0, "host", "failover", "%s: promoting standby", server)
	err := sb.promote()

	db.mu.Lock()
	sb.inProgress = false
	if err == nil {
		sb.done = true
		db.dialers[server] = sb.dial
		db.failCount[server] = 0
	}
	db.mu.Unlock()
	if err != nil {
		db.tracer.Emitf(0, "host", "failover_failed", "%s: %v", server, err)
		return fmt.Errorf("hostdb: failover of %q: promote: %w", server, err)
	}
	db.stats.Failovers.Add(1)
	db.tracer.Emitf(0, "host", "failover_done", "%s", server)
	// Settle what the crash left prepared, now against the promoted standby.
	if _, rerr := db.ResolveIndoubts(); rerr != nil {
		db.tracer.Emitf(0, "host", "failover_resolve_error", "%s: %v", server, rerr)
	}
	return nil
}
