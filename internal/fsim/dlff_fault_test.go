package fsim

import (
	"errors"
	"strings"
	"testing"
)

// errUpcaller models a DLFM whose Upcall daemon is down or unreachable:
// every upcall errors.
type errUpcaller struct{ err error }

func (u errUpcaller) IsLinked(string) (LinkStatus, error) { return LinkStatus{}, u.err }

// TestFilterFailsClosedOnUpcallError: a DLFF that cannot reach the DLFM
// must deny every guarded operation rather than guess — an unanswered
// upcall could be hiding a linked file.
func TestFilterFailsClosedOnUpcallError(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/doc", "alice", []byte("payload"))
	boom := errors.New("upcall daemon unreachable")
	f := NewFilter(s, errUpcaller{err: boom}, []byte("k"))

	if _, err := f.Open("/doc", ""); !errors.Is(err, boom) || !strings.Contains(err.Error(), "upcall failed") {
		t.Errorf("Open = %v, want wrapped upcall failure", err)
	}
	if err := f.Delete("/doc"); !errors.Is(err, boom) {
		t.Errorf("Delete = %v, want denial", err)
	}
	if err := f.Rename("/doc", "/moved"); !errors.Is(err, boom) {
		t.Errorf("Rename = %v, want denial", err)
	}
	if err := f.Write("/doc", []byte("new")); !errors.Is(err, boom) {
		t.Errorf("Write = %v, want denial", err)
	}

	// The denials changed nothing: the file is intact under its old name
	// with its old content.
	if _, err := s.Stat("/moved"); err == nil {
		t.Error("denied rename still moved the file")
	}
	got, err := s.Read("/doc")
	if err != nil || string(got) != "payload" {
		t.Errorf("file after denied ops = %q, %v, want original payload", got, err)
	}

	// Create and Stat are pass-through: new files are never linked, so no
	// upcall guards them and a DLFM outage must not block them.
	if err := f.Create("/new", "alice", []byte("x")); err != nil {
		t.Errorf("Create during outage = %v, want pass-through", err)
	}
	if _, err := f.Stat("/doc"); err != nil {
		t.Errorf("Stat during outage = %v, want pass-through", err)
	}
}
