// Package fsim simulates the file server DLFM manages: an in-memory POSIX-
// like file system with owners, permissions, inodes, and modification
// times, plus the DataLinks File System Filter (DLFF) that intercepts
// rename/delete/write and rejects them for linked files.
//
// The paper's DLFM ran next to AIX/JFS with a kernel filter; the in-memory
// server preserves exactly the operations DLFM needs (chown/chmod for
// takeover and release, stat for link-time capture, interception for
// referential integrity) without requiring root.
package fsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Errors returned by the file server and the DLFF filter.
var (
	ErrNotFound   = errors.New("fsim: no such file")
	ErrExists     = errors.New("fsim: file exists")
	ErrReadOnly   = errors.New("fsim: file is read-only")
	ErrPermission = errors.New("fsim: permission denied")
	// ErrLinked is the DLFF rejection: the file is linked to a database
	// and must not be renamed, deleted, moved, or modified.
	ErrLinked = errors.New("fsim: operation rejected: file is linked to a database")
	// ErrBadToken rejects full-access-control reads without a valid token.
	ErrBadToken = errors.New("fsim: missing or invalid access token")
)

// FileInfo is the stat result for one file.
type FileInfo struct {
	Name     string
	Owner    string
	Group    string
	ReadOnly bool
	MTime    int64
	Inode    int64
	Size     int64
}

type file struct {
	content  []byte
	owner    string
	group    string
	readOnly bool
	mtime    int64
	inode    int64
}

// Server is one simulated file server.
type Server struct {
	name  string
	mu    sync.RWMutex
	files map[string]*file

	nextInode atomic.Int64
	clock     atomic.Int64
}

// NewServer returns an empty file server with the given host name.
func NewServer(name string) *Server {
	return &Server{name: name, files: make(map[string]*file)}
}

// Name returns the server's host name (the URL authority DLFM serves).
func (s *Server) Name() string { return s.name }

func (s *Server) now() int64 { return s.clock.Add(1) }

// Create writes a new file owned by owner.
func (s *Server) Create(path, owner string, content []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.files[path]; exists {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	s.files[path] = &file{
		content: append([]byte(nil), content...),
		owner:   owner,
		group:   "users",
		mtime:   s.now(),
		inode:   s.nextInode.Add(1),
	}
	return nil
}

// Read returns the file's content. (Read permission checks for linked
// files are the DLFF's business, not the raw server's.)
func (s *Server) Read(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, exists := s.files[path]
	if !exists {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]byte(nil), f.content...), nil
}

// Write replaces the file's content, honouring the read-only flag.
func (s *Server) Write(path string, content []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, exists := s.files[path]
	if !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if f.readOnly {
		return fmt.Errorf("%w: %s", ErrReadOnly, path)
	}
	f.content = append([]byte(nil), content...)
	f.mtime = s.now()
	return nil
}

// Delete removes the file.
func (s *Server) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.files[path]; !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(s.files, path)
	return nil
}

// Rename moves the file to a new path.
func (s *Server) Rename(oldPath, newPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, exists := s.files[oldPath]
	if !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	if _, exists := s.files[newPath]; exists {
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	delete(s.files, oldPath)
	s.files[newPath] = f
	return nil
}

// Chown changes the file's owner (the Chown daemon's takeover/release).
func (s *Server) Chown(path, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, exists := s.files[path]
	if !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	f.owner = owner
	return nil
}

// Chmod sets or clears the read-only flag.
func (s *Server) Chmod(path string, readOnly bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, exists := s.files[path]
	if !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	f.readOnly = readOnly
	return nil
}

// Restore writes content to path regardless of the read-only flag, for the
// Retrieve daemon bringing a file back from the archive server.
func (s *Server) Restore(path, owner string, content []byte, readOnly bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = &file{
		content:  append([]byte(nil), content...),
		owner:    owner,
		group:    "users",
		readOnly: readOnly,
		mtime:    s.now(),
		inode:    s.nextInode.Add(1),
	}
	return nil
}

// Stat returns file metadata.
func (s *Server) Stat(path string) (FileInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, exists := s.files[path]
	if !exists {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return FileInfo{
		Name:     path,
		Owner:    f.owner,
		Group:    f.group,
		ReadOnly: f.readOnly,
		MTime:    f.mtime,
		Inode:    f.inode,
		Size:     int64(len(f.content)),
	}, nil
}

// Exists reports whether path exists.
func (s *Server) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, exists := s.files[path]
	return exists
}

// List returns the paths under prefix, sorted.
func (s *Server) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
