package fsim

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// LinkStatus is the answer to a DLFF upcall.
type LinkStatus struct {
	Linked      bool
	FullControl bool // read access requires a database-issued token
}

// Upcaller answers "is this file linked?" — implemented by the DLFM's
// Upcall daemon.
type Upcaller interface {
	IsLinked(path string) (LinkStatus, error)
}

// Filter is the DataLinks File System Filter: it sits between user
// programs and the raw file server, upcalling to DLFM to enforce
// referential integrity (no rename/delete/move of linked files) and
// database-controlled read access.
type Filter struct {
	fs     *Server
	upcall Upcaller
	secret []byte

	upcalls  atomic.Int64
	rejected atomic.Int64
}

// NewFilter wraps fs with the DLFF enforcement. secret is the token-signing
// key shared with the host database (which mints tokens on SELECT).
func NewFilter(fs *Server, upcall Upcaller, secret []byte) *Filter {
	return &Filter{fs: fs, upcall: upcall, secret: secret}
}

// Upcalls returns how many upcalls the filter has made (Figure 5's Upcall
// daemon traffic).
func (f *Filter) Upcalls() int64 { return f.upcalls.Load() }

// Rejected returns how many operations the filter refused.
func (f *Filter) Rejected() int64 { return f.rejected.Load() }

func (f *Filter) status(path string) (LinkStatus, error) {
	f.upcalls.Add(1)
	return f.upcall.IsLinked(path)
}

// Open reads a file. For a file linked under full access control, the
// caller must present the token the host database appended to the URL it
// returned; ordinary files open without one.
func (f *Filter) Open(path, token string) ([]byte, error) {
	st, err := f.status(path)
	if err != nil {
		return nil, fmt.Errorf("fsim: upcall failed: %w", err)
	}
	if st.Linked && st.FullControl {
		if !ValidateToken(f.secret, path, token, time.Now().Unix()) {
			f.rejected.Add(1)
			return nil, fmt.Errorf("%w: %s", ErrBadToken, path)
		}
	}
	return f.fs.Read(path)
}

// Delete removes a file unless it is linked.
func (f *Filter) Delete(path string) error {
	st, err := f.status(path)
	if err != nil {
		return fmt.Errorf("fsim: upcall failed: %w", err)
	}
	if st.Linked {
		f.rejected.Add(1)
		return fmt.Errorf("%w (delete %s)", ErrLinked, path)
	}
	return f.fs.Delete(path)
}

// Rename moves a file unless it is linked (either endpoint).
func (f *Filter) Rename(oldPath, newPath string) error {
	st, err := f.status(oldPath)
	if err != nil {
		return fmt.Errorf("fsim: upcall failed: %w", err)
	}
	if st.Linked {
		f.rejected.Add(1)
		return fmt.Errorf("%w (rename %s)", ErrLinked, oldPath)
	}
	return f.fs.Rename(oldPath, newPath)
}

// Write modifies a file unless it is linked (linked files are read-only
// from the file system's point of view).
func (f *Filter) Write(path string, content []byte) error {
	st, err := f.status(path)
	if err != nil {
		return fmt.Errorf("fsim: upcall failed: %w", err)
	}
	if st.Linked {
		f.rejected.Add(1)
		return fmt.Errorf("%w (write %s)", ErrLinked, path)
	}
	return f.fs.Write(path, content)
}

// Create passes through: new files are never linked.
func (f *Filter) Create(path, owner string, content []byte) error {
	return f.fs.Create(path, owner, content)
}

// Stat passes through.
func (f *Filter) Stat(path string) (FileInfo, error) { return f.fs.Stat(path) }

// --- access tokens -----------------------------------------------------------

// MintToken signs an access token for path valid until expiry (Unix
// seconds). The host database calls this when returning a full-access-
// control DATALINK value to an application.
func MintToken(secret []byte, path string, expiry int64) string {
	mac := hmac.New(sha256.New, secret)
	fmt.Fprintf(mac, "%s|%d", path, expiry)
	return hex.EncodeToString(mac.Sum(nil)) + ";" + strconv.FormatInt(expiry, 10)
}

// ValidateToken checks a token minted by MintToken against now.
func ValidateToken(secret []byte, path, token string, now int64) bool {
	sep := strings.LastIndexByte(token, ';')
	if sep < 0 {
		return false
	}
	expiry, err := strconv.ParseInt(token[sep+1:], 10, 64)
	if err != nil || expiry < now {
		return false
	}
	want := MintToken(secret, path, expiry)
	return hmac.Equal([]byte(want), []byte(token))
}
