package fsim

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestCreateReadWriteDelete(t *testing.T) {
	s := NewServer("fs1")
	if err := s.Create("/data/a.txt", "alice", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/data/a.txt", "alice", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, err := s.Read("/data/a.txt")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("read = %q, %v", got, err)
	}
	if err := s.Write("/data/a.txt", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read("/data/a.txt")
	if string(got) != "v2" {
		t.Fatalf("read after write = %q", got)
	}
	if err := s.Delete("/data/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("/data/a.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	if err := s.Delete("/data/a.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := s.Write("/ghost", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("write missing: %v", err)
	}
}

func TestStatAndMtimeAdvances(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/a", "alice", []byte("x"))
	fi1, err := s.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if fi1.Owner != "alice" || fi1.Size != 1 || fi1.Inode == 0 || fi1.ReadOnly {
		t.Fatalf("stat = %+v", fi1)
	}
	s.Write("/a", []byte("xy"))
	fi2, _ := s.Stat("/a")
	if fi2.MTime <= fi1.MTime || fi2.Size != 2 {
		t.Fatalf("mtime did not advance: %+v -> %+v", fi1, fi2)
	}
	if fi2.Inode != fi1.Inode {
		t.Error("inode changed on write")
	}
	if _, err := s.Stat("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat missing: %v", err)
	}
}

func TestChownChmod(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/a", "alice", []byte("x"))
	// Takeover: owner becomes the DLFM administrator, file goes read-only.
	if err := s.Chown("/a", "dlfmadm"); err != nil {
		t.Fatal(err)
	}
	if err := s.Chmod("/a", true); err != nil {
		t.Fatal(err)
	}
	fi, _ := s.Stat("/a")
	if fi.Owner != "dlfmadm" || !fi.ReadOnly {
		t.Fatalf("after takeover: %+v", fi)
	}
	if err := s.Write("/a", []byte("nope")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to read-only: %v", err)
	}
	// Release restores writability.
	s.Chown("/a", "alice")
	s.Chmod("/a", false)
	if err := s.Write("/a", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Chown("/ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("chown missing: %v", err)
	}
	if err := s.Chmod("/ghost", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("chmod missing: %v", err)
	}
}

func TestRename(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/a", "alice", []byte("x"))
	s.Create("/b", "alice", []byte("y"))
	if err := s.Rename("/a", "/b"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	if err := s.Rename("/a", "/c"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a") || !s.Exists("/c") {
		t.Error("rename did not move the file")
	}
	if err := s.Rename("/ghost", "/d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestList(t *testing.T) {
	s := NewServer("fs1")
	for _, p := range []string{"/data/b", "/data/a", "/other/c"} {
		s.Create(p, "alice", nil)
	}
	got := s.List("/data/")
	if len(got) != 2 || got[0] != "/data/a" || got[1] != "/data/b" {
		t.Fatalf("List = %v", got)
	}
}

func TestRestoreOverwritesReadOnly(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/a", "alice", []byte("old"))
	s.Chmod("/a", true)
	if err := s.Restore("/a", "dlfmadm", []byte("from-archive"), true); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read("/a")
	fi, _ := s.Stat("/a")
	if string(got) != "from-archive" || fi.Owner != "dlfmadm" || !fi.ReadOnly {
		t.Fatalf("restore result: %q %+v", got, fi)
	}
}

// staticUpcaller answers from a fixed table, standing in for the DLFM.
type staticUpcaller map[string]LinkStatus

func (u staticUpcaller) IsLinked(path string) (LinkStatus, error) {
	return u[path], nil
}

func TestFilterProtectsLinkedFiles(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/linked", "alice", []byte("x"))
	s.Create("/free", "alice", []byte("y"))
	up := staticUpcaller{"/linked": {Linked: true}}
	f := NewFilter(s, up, []byte("secret"))

	if err := f.Delete("/linked"); !errors.Is(err, ErrLinked) {
		t.Fatalf("delete linked: %v", err)
	}
	if err := f.Rename("/linked", "/elsewhere"); !errors.Is(err, ErrLinked) {
		t.Fatalf("rename linked: %v", err)
	}
	if err := f.Write("/linked", []byte("z")); !errors.Is(err, ErrLinked) {
		t.Fatalf("write linked: %v", err)
	}
	// Unlinked files pass through.
	if err := f.Write("/free", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete("/free"); err != nil {
		t.Fatal(err)
	}
	if f.Rejected() != 3 {
		t.Errorf("Rejected = %d, want 3", f.Rejected())
	}
	if f.Upcalls() == 0 {
		t.Error("no upcalls recorded")
	}
}

func TestFilterPartialControlAllowsOpenWithoutToken(t *testing.T) {
	s := NewServer("fs1")
	s.Create("/p", "alice", []byte("x"))
	f := NewFilter(s, staticUpcaller{"/p": {Linked: true, FullControl: false}}, []byte("k"))
	if _, err := f.Open("/p", ""); err != nil {
		t.Fatalf("partial-control open: %v", err)
	}
}

func TestFilterFullControlRequiresToken(t *testing.T) {
	secret := []byte("shared-key")
	s := NewServer("fs1")
	s.Create("/full", "dlfmadm", []byte("payload"))
	f := NewFilter(s, staticUpcaller{"/full": {Linked: true, FullControl: true}}, secret)

	if _, err := f.Open("/full", ""); !errors.Is(err, ErrBadToken) {
		t.Fatalf("open without token: %v", err)
	}
	if _, err := f.Open("/full", "bogus;999999999999"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("open with forged token: %v", err)
	}
	good := MintToken(secret, "/full", time.Now().Unix()+60)
	got, err := f.Open("/full", good)
	if err != nil || string(got) != "payload" {
		t.Fatalf("open with valid token: %q, %v", got, err)
	}
	// Token for another path must not transfer.
	other := MintToken(secret, "/other", time.Now().Unix()+60)
	if _, err := f.Open("/full", other); !errors.Is(err, ErrBadToken) {
		t.Fatalf("open with other-path token: %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	secret := []byte("k")
	tok := MintToken(secret, "/a", 1000)
	if !ValidateToken(secret, "/a", tok, 999) {
		t.Error("valid token rejected")
	}
	if ValidateToken(secret, "/a", tok, 1001) {
		t.Error("expired token accepted")
	}
	if ValidateToken(secret, "/a", "garbage", 0) {
		t.Error("garbage token accepted")
	}
	if ValidateToken([]byte("other"), "/a", tok, 0) {
		t.Error("token accepted under wrong secret")
	}
}

func TestFilterCreateAndStatPassThrough(t *testing.T) {
	s := NewServer("fs1")
	f := NewFilter(s, staticUpcaller{}, nil)
	if err := f.Create("/n", "bob", []byte("1")); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat("/n")
	if err != nil || fi.Owner != "bob" {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
}
