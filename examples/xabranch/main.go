// XA branch: Section 3.3's global-transaction case. The host database is
// itself one branch of a distributed transaction driven by an external
// transaction manager; its prepare cascades to the DLFMs, and the global
// outcome — decided elsewhere — resolves every level, even across a crash.
//
// The example plays an application updating an orders database (another
// branch, simulated) together with a document link, prepares both, crashes
// the host while indoubt, and lets the coordinator's decision resolve the
// restarted host branch and the DLFM sub-transaction.
//
// Run with: go run ./examples/xabranch
package main

import (
	"fmt"
	"log"

	"repro/internal/hostdb"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	st, err := workload.NewStack(workload.StackConfig{Servers: []string{"fs1"}})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	if err := st.Host.CreateTable(
		`CREATE TABLE invoices (id BIGINT NOT NULL, amount BIGINT, scan VARCHAR)`,
		hostdb.DatalinkCol{Name: "scan", Recovery: true},
	); err != nil {
		log.Fatal(err)
	}
	if err := st.FS["fs1"].Create("/inv/0001.pdf", "scanner", []byte("INVOICE #1")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment ready: invoices table with a DATALINK scan column")

	// --- Round 1: a global transaction that commits normally. ---------
	s := st.Host.Session()
	if _, err := s.Exec(`INSERT INTO invoices (id, amount, scan) VALUES (1, 4200, ?)`,
		value.Str(hostdb.URL("fs1", "/inv/0001.pdf"))); err != nil {
		log.Fatal(err)
	}
	// The external transaction manager asks every branch to prepare.
	if err := s.PrepareGlobal(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("branch prepared: host hardened, DLFM sub-transaction prepared, locks held")
	// ... the TM collects the other branches' votes ... all yes:
	if err := s.CommitGlobal(); err != nil {
		log.Fatal(err)
	}
	status, _ := st.DLFMs["fs1"].Upcaller().IsLinked("/inv/0001.pdf")
	fmt.Printf("global commit: invoice row stored, scan linked=%v\n\n", status.Linked)
	s.Close()

	// --- Round 2: prepare, crash while indoubt, coordinator resolves. --
	if err := st.FS["fs1"].Create("/inv/0002.pdf", "scanner", []byte("INVOICE #2")); err != nil {
		log.Fatal(err)
	}
	s2 := st.Host.Session()
	if _, err := s2.Exec(`INSERT INTO invoices (id, amount, scan) VALUES (2, 1300, ?)`,
		value.Str(hostdb.URL("fs1", "/inv/0002.pdf"))); err != nil {
		log.Fatal(err)
	}
	hostTxn := s2.TxnID()
	if err := s2.PrepareGlobal(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("branch for txn %d prepared — and the host crashes\n", hostTxn)
	if err := st.Host.Crash(); err != nil {
		log.Fatal(err)
	}

	// Restart: the branch is indoubt; its effects are present but locked.
	branches, err := st.Host.HostIndoubtBranches()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart, indoubt branches: %v\n", branches)
	// The DLFM-side resolution daemon must WAIT for these (outcome is the
	// coordinator's, not the host's, to decide):
	if n, _ := st.Host.ResolveIndoubts(); n == 0 {
		fmt.Println("indoubt daemon correctly waits for the global outcome")
	}

	// The coordinator's decision arrives: commit.
	if err := st.Host.ResolveHostBranch(hostTxn, true); err != nil {
		log.Fatal(err)
	}
	status, _ = st.DLFMs["fs1"].Upcaller().IsLinked("/inv/0002.pdf")
	s3 := st.Host.Session()
	defer s3.Close()
	rows, err := s3.Query(`SELECT id, amount FROM invoices ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	s3.Commit()
	fmt.Printf("coordinator committed: scan linked=%v, invoice rows=%d\n", status.Linked, len(rows))
	for _, r := range rows {
		fmt.Printf("  invoice id=%d amount=%d\n", r[0].Int64(), r[1].Int64())
	}
}
