// Drop table: Section 3.5's Delete Group daemon flow.
//
// Dropping an SQL table with a DATALINK column must unlink every referenced
// file — potentially a huge number — so the work is split: the DROP TABLE
// transaction only marks the file group deleted; after commit the Delete
// Group daemon unlinks the files asynchronously, committing its local
// database work in batches (the Section 4 log-full lesson), and the
// Garbage Collector eventually removes the expired group's metadata.
//
// Run with: go run ./examples/droptable
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hostdb"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	st, err := workload.NewStack(workload.StackConfig{
		Servers: []string{"fs1"},
		MutateDLFM: func(_ string, c *core.Config) {
			c.BatchCommitN = 25 // daemon commits every 25 unlinks
			c.GroupLifespan = 0 // tombstones expire immediately (for the demo)
			c.GCInterval = 5 * time.Millisecond
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	if err := st.Host.CreateTable(
		`CREATE TABLE scans (id BIGINT NOT NULL, img VARCHAR)`,
		hostdb.DatalinkCol{Name: "img"},
	); err != nil {
		log.Fatal(err)
	}

	// Link 120 scanned images via the Load utility (batched DLFM txn).
	const n = 120
	rows := make([]value.Row, n)
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/scans/img%04d.tif", i)
		if err := st.FS["fs1"].Create(path, "scanner", []byte("TIFF")); err != nil {
			log.Fatal(err)
		}
		rows[i] = value.Row{value.Int(int64(i)), value.Str(hostdb.URL("fs1", path))}
	}
	loaded, err := st.Host.Load("scans", []string{"id", "img"}, rows)
	if err != nil {
		log.Fatal(err)
	}
	dlfm := st.DLFMs["fs1"]
	fmt.Printf("loaded %d rows; DLFM used %d intermediate (batched) commits during the load\n",
		loaded, dlfm.Stats().BatchCommits)

	linked, _ := dlfm.Upcaller().IsLinked("/scans/img0000.tif")
	fmt.Printf("before drop: img0000 linked=%v\n", linked.Linked)

	// DROP TABLE: returns as soon as the 2PC commits; the files are still
	// linked at that instant (and cannot be re-linked elsewhere until the
	// daemon unlinks them).
	start := time.Now()
	if err := st.Host.DropTable("scans"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DROP TABLE returned in %s (unlinking happens asynchronously)\n",
		time.Since(start).Round(time.Microsecond))

	// Watch the Delete Group daemon drain the group.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st0, _ := dlfm.Upcaller().IsLinked("/scans/img0000.tif")
		stN, _ := dlfm.Upcaller().IsLinked(fmt.Sprintf("/scans/img%04d.tif", n-1))
		if !st0.Linked && !stN.Linked {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats := dlfm.Stats()
	fmt.Printf("Delete Group daemon: groups=%d unlinked-files (entries now 'U')\n", stats.GroupsDeleted)

	// Files are released: the owner can delete them again.
	if err := st.FS["fs1"].Delete("/scans/img0000.tif"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("released file deleted by its owner — referential integrity no longer applies")

	// The Garbage Collector removes the expired tombstone and the unlinked
	// entries.
	if err := dlfm.RunGC(); err != nil {
		log.Fatal(err)
	}
	c := dlfm.DB().Connect()
	groups, _, _ := c.QueryInt(`SELECT COUNT(*) FROM dlfm_group`)
	entries, _, _ := c.QueryInt(`SELECT COUNT(*) FROM dlfm_file`)
	c.Commit()
	fmt.Printf("after GC: dlfm_group rows=%d, dlfm_file rows=%d (expect 0, 0)\n", groups, entries)
	fmt.Printf("\nDLFM counters: links=%d batch-commits=%d groups-deleted=%d entries-GCed=%d\n",
		stats.Links, dlfm.Stats().BatchCommits, dlfm.Stats().GroupsDeleted, dlfm.Stats().FilesGCed)
}
