// Quickstart: the Figure 1 / Figure 3 flow of the paper end to end.
//
// A host database manages a table with a DATALINK column; files live on an
// external file server managed by a DLFM. The example links a file inside a
// transaction, reads it back through the DLFF with a database-issued access
// token, shows that the filter protects the linked file against rename and
// delete, and finally unlinks it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/fsim"
	"repro/internal/hostdb"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	// One host database + one DLFM-managed file server ("fs1").
	st, err := workload.NewStack(workload.StackConfig{Servers: []string{"fs1"}})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Println("deployment: host database + DLFM on file server fs1")

	// A user writes a file the ordinary way — no database involved yet.
	if err := st.FS["fs1"].Create("/reports/q3.pdf", "alice", []byte("Q3 results: up and to the right")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice wrote /reports/q3.pdf on fs1")

	// The DBA declares a table with a DATALINK column: full access control
	// (reads need a token) and recovery (DLFM archives the file).
	if err := st.Host.CreateTable(
		`CREATE TABLE reports (id BIGINT NOT NULL, title VARCHAR, doc VARCHAR)`,
		hostdb.DatalinkCol{Name: "doc", Recovery: true, FullControl: true},
	); err != nil {
		log.Fatal(err)
	}
	fmt.Println("created table reports (doc DATALINK, READ PERMISSION DB, RECOVERY YES)")

	// Linking happens inside an ordinary SQL transaction: the INSERT's
	// DATALINK value makes the datalink engine call the DLFM's LinkFile in
	// the same transaction, and COMMIT runs two-phase commit across both.
	s := st.Host.Session()
	defer s.Close()
	if _, err := s.Exec(`INSERT INTO reports (id, title, doc) VALUES (1, 'Q3 results', ?)`,
		value.Str(hostdb.URL("fs1", "/reports/q3.pdf"))); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("INSERT + COMMIT: file linked under two-phase commit")

	// The file now belongs to the database: owner changed, read-only.
	fi, _ := st.FS["fs1"].Stat("/reports/q3.pdf")
	fmt.Printf("after takeover: owner=%s readOnly=%v\n", fi.Owner, fi.ReadOnly)

	// The application searches the database and gets the URL + token back.
	rows, err := s.Query(`SELECT doc FROM reports WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	s.Commit()
	got := rows[0][0].Text()
	hash := strings.IndexByte(got, '#')
	url, token := got[:hash], got[hash+1:]
	fmt.Printf("SELECT returned %s with an access token\n", url)

	// File access uses standard file-system APIs through the DLFF.
	filter := fsim.NewFilter(st.FS["fs1"], st.DLFMs["fs1"].Upcaller(), []byte("datalinks-host"))
	content, err := filter.Open("/reports/q3.pdf", token)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened through DLFF with token: %q\n", content)

	// Referential integrity: rename/delete of a linked file is rejected.
	if err := filter.Delete("/reports/q3.pdf"); err != nil {
		fmt.Printf("DLFF rejected delete of linked file: %v\n", err)
	}
	if err := filter.Rename("/reports/q3.pdf", "/tmp/sneaky.pdf"); err != nil {
		fmt.Printf("DLFF rejected rename of linked file: %v\n", err)
	}
	// And opening without the token fails under full access control.
	if _, err := filter.Open("/reports/q3.pdf", ""); err != nil {
		fmt.Printf("DLFF rejected tokenless read: %v\n", err)
	}

	// Deleting the row unlinks the file and releases it back to alice.
	if _, err := s.Exec(`DELETE FROM reports WHERE id = 1`); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fi, _ = st.FS["fs1"].Stat("/reports/q3.pdf")
	fmt.Printf("after unlink: owner=%s readOnly=%v\n", fi.Owner, fi.ReadOnly)
	if err := filter.Delete("/reports/q3.pdf"); err == nil {
		fmt.Println("file is unmanaged again; alice may delete it")
	}

	ds := st.DLFMs["fs1"].Stats()
	fmt.Printf("\nDLFM counters: links=%d unlinks=%d 2PC-commits=%d chown-ops=%d upcalls=%d\n",
		ds.Links, ds.Unlinks, ds.Commits, ds.ChownOps, ds.Upcalls)
}
