// Media assets: the paper's motivating scenario — "a video clip used in TV
// commercials within the last year that contains images of Michael Jordan"
// (Section 2.1). A media library keeps clip metadata in the database and
// the clips themselves as ordinary files on two file servers; DataLinks
// keeps both sides consistent.
//
// The example demonstrates: multi-server transactions, searching metadata
// to find files, version-swapping a clip (unlink+link in one transaction,
// "an important customer requirement"), a statement-level failure being
// backed out, and rollback restoring the previous link.
//
// Run with: go run ./examples/mediaassets
package main

import (
	"fmt"
	"log"

	"repro/internal/hostdb"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	st, err := workload.NewStack(workload.StackConfig{Servers: []string{"fs-east", "fs-west"}})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Println("deployment: host database + DLFMs on fs-east and fs-west")

	if err := st.Host.CreateTable(
		`CREATE TABLE clips (id BIGINT NOT NULL, subject VARCHAR, year BIGINT, clip VARCHAR, thumb VARCHAR)`,
		hostdb.DatalinkCol{Name: "clip", Recovery: true},
		hostdb.DatalinkCol{Name: "thumb"},
	); err != nil {
		log.Fatal(err)
	}
	c := st.Host.Engine().Connect()
	if _, err := c.Exec(`CREATE UNIQUE INDEX clips_id ON clips (id)`); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Exec(`CREATE INDEX clips_subject ON clips (subject)`); err != nil {
		log.Fatal(err)
	}
	st.Host.Engine().SetStats("clips", 10_000_000,
		map[string]int64{"id": 10_000_000, "subject": 50_000})
	fmt.Println("created clips table: clip DATALINK (recovery) on one server, thumb DATALINK on another")

	// Ingest: clips on fs-east, thumbnails on fs-west — one transaction
	// spans both DLFMs (two-phase commit with two participants).
	assets := []struct {
		id      int64
		subject string
		year    int64
	}{
		{1, "jordan-dunk", 1998},
		{2, "jordan-fadeaway", 1998},
		{3, "superbowl-ad", 1999},
	}
	s := st.Host.Session()
	defer s.Close()
	for _, a := range assets {
		clip := fmt.Sprintf("/video/%s.mpg", a.subject)
		thumb := fmt.Sprintf("/thumbs/%s.jpg", a.subject)
		if err := st.FS["fs-east"].Create(clip, "ingest", []byte("MPEG:"+a.subject)); err != nil {
			log.Fatal(err)
		}
		if err := st.FS["fs-west"].Create(thumb, "ingest", []byte("JPEG:"+a.subject)); err != nil {
			log.Fatal(err)
		}
		if _, err := s.Exec(
			`INSERT INTO clips (id, subject, year, clip, thumb) VALUES (?, ?, ?, ?, ?)`,
			value.Int(a.id), value.Str(a.subject), value.Int(a.year),
			value.Str(hostdb.URL("fs-east", clip)), value.Str(hostdb.URL("fs-west", thumb))); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d assets across two servers in one 2PC transaction\n", len(assets))

	// Search the metadata, then read the files directly (Figure 3's flow).
	rows, err := s.Query(`SELECT id, clip FROM clips WHERE subject = 'jordan-dunk'`)
	if err != nil {
		log.Fatal(err)
	}
	s.Commit()
	for _, r := range rows {
		server, path, _ := hostdb.ParseURL(r[1].Text())
		content, err := st.FS[server].Read(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search hit id=%d -> %s -> %q\n", r[0].Int64(), r[1].Text(), content)
	}

	// Version swap: replace the clip with a remastered file — the old file
	// is unlinked and the new one linked in the same transaction.
	remaster := "/video/jordan-dunk-remastered.mpg"
	if err := st.FS["fs-east"].Create(remaster, "ingest", []byte("MPEG:remastered")); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Exec(`UPDATE clips SET clip = ? WHERE id = 1`,
		value.Str(hostdb.URL("fs-east", remaster))); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	old, _ := st.DLFMs["fs-east"].Upcaller().IsLinked("/video/jordan-dunk.mpg")
	cur, _ := st.DLFMs["fs-east"].Upcaller().IsLinked(remaster)
	fmt.Printf("version swap committed: old linked=%v, remaster linked=%v\n", old.Linked, cur.Linked)

	// Rollback restores the previous version's link.
	other := "/video/jordan-dunk-directors-cut.mpg"
	st.FS["fs-east"].Create(other, "ingest", []byte("MPEG:directors")) //nolint:errcheck
	if _, err := s.Exec(`UPDATE clips SET clip = ? WHERE id = 1`,
		value.Str(hostdb.URL("fs-east", other))); err != nil {
		log.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		log.Fatal(err)
	}
	cur, _ = st.DLFMs["fs-east"].Upcaller().IsLinked(remaster)
	dir, _ := st.DLFMs["fs-east"].Upcaller().IsLinked(other)
	fmt.Printf("rollback: remaster still linked=%v, director's cut linked=%v\n", cur.Linked, dir.Linked)

	// Statement-level failure: a missing file fails the INSERT, the link
	// of the statement's other column is backed out, and the transaction
	// carries on.
	st.FS["fs-west"].Create("/thumbs/ghost.jpg", "ingest", []byte("JPEG")) //nolint:errcheck
	// (thumb first so its link succeeds before the clip link fails —
	// exercising the in_backout path.)
	_, err = s.Exec(`INSERT INTO clips (id, subject, year, thumb, clip) VALUES (4, 'ghost', 2000, ?, ?)`,
		value.Str(hostdb.URL("fs-west", "/thumbs/ghost.jpg")),
		value.Str(hostdb.URL("fs-east", "/video/ghost.mpg"))) // does not exist
	fmt.Printf("insert with a missing clip failed as a statement error: %v\n", err != nil)
	if _, err := s.Exec(`INSERT INTO clips (id, subject, year) VALUES (5, 'plain-row', 2000)`); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	ghostThumb, _ := st.DLFMs["fs-west"].Upcaller().IsLinked("/thumbs/ghost.jpg")
	fmt.Printf("backed-out thumb link after the failed statement: linked=%v\n", ghostThumb.Linked)

	rows, err = s.Query(`SELECT COUNT(*) FROM clips`)
	if err != nil {
		log.Fatal(err)
	}
	s.Commit()
	fmt.Printf("\nfinal state: %d rows; DLFM fs-east links=%d, fs-west links=%d\n",
		rows[0][0].Int64(), st.DLFMs["fs-east"].Stats().Links, st.DLFMs["fs-west"].Stats().Links)
}
