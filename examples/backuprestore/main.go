// Backup and restore: Section 3.4's coordinated backup, point-in-time
// restore, and reconcile, end to end.
//
// Timeline:
//  1. link two contract documents (RECOVERY YES: the Copy daemon archives
//     them asynchronously after commit);
//  2. BACKUP — waits for pending archive copies, snapshots the host tables,
//     registers the backup with the DLFM;
//  3. post-backup churn: one document is replaced, a new one arrives;
//  4. disaster: the file system loses a file;
//  5. RESTORE to the backup — host rows return to the old state, the DLFM
//     re-links/unlinks to match, and the Retrieve daemon brings the lost
//     file's correct version back from the archive server;
//  6. RECONCILE confirms both sides agree.
//
// Run with: go run ./examples/backuprestore
package main

import (
	"fmt"
	"log"

	"repro/internal/hostdb"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	st, err := workload.NewStack(workload.StackConfig{Servers: []string{"fs1"}})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	if err := st.Host.CreateTable(
		`CREATE TABLE contracts (id BIGINT NOT NULL, party VARCHAR, doc VARCHAR)`,
		hostdb.DatalinkCol{Name: "doc", Recovery: true, FullControl: true},
	); err != nil {
		log.Fatal(err)
	}
	fmt.Println("created contracts table (doc DATALINK, RECOVERY YES)")

	fs := st.FS["fs1"]
	s := st.Host.Session()
	defer s.Close()
	mustExec := func(q string, params ...value.Value) {
		if _, err := s.Exec(q, params...); err != nil {
			log.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Two contracts.
	fs.Create("/contracts/acme.pdf", "legal", []byte("ACME master agreement v1"))  //nolint:errcheck
	fs.Create("/contracts/globex.pdf", "legal", []byte("Globex services deal v1")) //nolint:errcheck
	mustExec(`INSERT INTO contracts (id, party, doc) VALUES (1, 'ACME', ?)`,
		value.Str(hostdb.URL("fs1", "/contracts/acme.pdf")))
	mustExec(`INSERT INTO contracts (id, party, doc) VALUES (2, 'Globex', ?)`,
		value.Str(hostdb.URL("fs1", "/contracts/globex.pdf")))
	fmt.Println("linked /contracts/acme.pdf and /contracts/globex.pdf")

	// 2. Coordinated backup: flushes the Copy daemon's queue first.
	backupID, err := st.Host.Backup()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BACKUP %d complete; archive server holds %d copies\n",
		backupID, st.Arch["fs1"].Count())

	// 3. Post-backup churn: ACME renegotiates (new file version), a third
	// contract arrives.
	fs.Create("/contracts/acme-v2.pdf", "legal", []byte("ACME master agreement v2")) //nolint:errcheck
	mustExec(`UPDATE contracts SET doc = ? WHERE id = 1`,
		value.Str(hostdb.URL("fs1", "/contracts/acme-v2.pdf")))
	fs.Create("/contracts/initech.pdf", "legal", []byte("Initech licensing v1")) //nolint:errcheck
	mustExec(`INSERT INTO contracts (id, party, doc) VALUES (3, 'Initech', ?)`,
		value.Str(hostdb.URL("fs1", "/contracts/initech.pdf")))
	fmt.Println("post-backup: ACME doc replaced with v2, Initech contract added")

	// 4. Disaster: the original ACME file is lost from the file system
	// (the unlink released it, then someone deleted it).
	if err := fs.Delete("/contracts/acme.pdf"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disaster: /contracts/acme.pdf deleted from the file system")

	// 5. Restore to the backup.
	if err := st.Host.Restore(backupID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RESTORE to backup %d done\n", backupID)

	rows, err := s.Query(`SELECT id, party, doc FROM contracts ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	s.Commit()
	for _, r := range rows {
		fmt.Printf("  host row: id=%d party=%s doc=%s\n", r[0].Int64(), r[1].Text(), stripToken(r[2].Text()))
	}
	// The lost file came back from the archive server with its
	// backup-time content (keyed by the link's recovery id).
	content, err := fs.Read("/contracts/acme.pdf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  retrieved from archive: /contracts/acme.pdf = %q\n", content)
	v2, _ := st.DLFMs["fs1"].Upcaller().IsLinked("/contracts/acme-v2.pdf")
	initech, _ := st.DLFMs["fs1"].Upcaller().IsLinked("/contracts/initech.pdf")
	fmt.Printf("  post-backup links rolled back: acme-v2 linked=%v, initech linked=%v\n",
		v2.Linked, initech.Linked)

	// 6. Reconcile confirms consistency (nothing to repair).
	nulled, err := st.Host.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RECONCILE: %d unresolvable references (expect 0)\n", nulled)

	ds := st.DLFMs["fs1"].Stats()
	fmt.Printf("\nDLFM counters: archived=%d retrieved=%d links=%d unlinks=%d\n",
		ds.ArchiveCopies, ds.Retrievals, ds.Links, ds.Unlinks)
}

// stripToken drops the access token for display.
func stripToken(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			return s[:i] + "#<token>"
		}
	}
	return s
}
